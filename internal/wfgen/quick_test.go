package wfgen

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"wroofline/internal/sweep"
)

// specFrom maps raw quick-generated integers onto a valid spec, keeping
// sizes small enough that a thousand generations stay fast under -race.
func specFrom(familyIdx, width, depth, cv uint16, seed uint64) *Spec {
	families := Families()
	family := families[int(familyIdx)%len(families)]
	w := 1 + int(width%24)
	if family == "montage" && w < 2 {
		w = 2
	}
	return &Spec{
		Family:  family,
		Seed:    seed,
		Width:   w,
		Depth:   1 + int(depth%6),
		CV:      float64(cv%9) / 10, // 0 .. 0.8
		Payload: "512 MB",
	}
}

// The generator's structural contract, checked over the randomized spec
// space: every DAG is acyclic, matches the family's closed-form task count,
// width, and critical-path length, and regenerates bit-identically from the
// same seed.
func TestQuickShapeInvariants(t *testing.T) {
	prop := func(familyIdx, width, depth, cv uint16, seed uint64) bool {
		spec := specFrom(familyIdx, width, depth, cv, seed)
		shape, err := spec.Shape()
		if err != nil {
			t.Logf("shape(%+v): %v", spec, err)
			return false
		}
		wf, err := Generate(spec)
		if err != nil {
			t.Logf("generate(%+v): %v", spec, err)
			return false
		}
		g := wf.Graph()
		if _, err := g.TopoSort(); err != nil {
			t.Logf("%s: not a DAG: %v", wf.Name, err)
			return false
		}
		if wf.TotalTasks() != shape.Tasks {
			t.Logf("%s: tasks = %d, want %d", wf.Name, wf.TotalTasks(), shape.Tasks)
			return false
		}
		gotWidth, err := g.Width()
		if err != nil || gotWidth != shape.Width {
			t.Logf("%s: width = %d (%v), want %d", wf.Name, gotWidth, err, shape.Width)
			return false
		}
		levels, err := g.CriticalPathLength()
		if err != nil || levels != shape.Levels {
			t.Logf("%s: levels = %d (%v), want %d", wf.Name, levels, err, shape.Levels)
			return false
		}
		a, err := json.Marshal(wf)
		if err != nil {
			t.Logf("%s: marshal: %v", wf.Name, err)
			return false
		}
		wf2, err := Generate(spec)
		if err != nil {
			return false
		}
		b, err := json.Marshal(wf2)
		if err != nil {
			return false
		}
		if !bytes.Equal(a, b) {
			t.Logf("%s: same seed generated different workflows", wf.Name)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Generation is bit-identical at any worker count: fanning a batch of specs
// over the sweep pool at 1 worker and at GOMAXPROCS yields the same bytes
// per scenario. Run under -race this also proves generation shares no
// hidden mutable state.
func TestGenerateByteEqualAcrossWorkerCounts(t *testing.T) {
	const n = 64
	families := Families()
	gen := func(workers int) [][]byte {
		out, err := sweep.Map(context.Background(), n, workers, func(_ context.Context, i int) ([]byte, error) {
			spec := &Spec{
				Family: families[i%len(families)],
				Seed:   sweep.TrialSeed(99, i),
				Width:  2 + i%7,
				Depth:  1 + i%5,
				CV:     0.4,
			}
			wf, err := Generate(spec)
			if err != nil {
				return nil, err
			}
			return json.Marshal(wf)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := gen(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := gen(workers)
		for i := range base {
			if !bytes.Equal(base[i], got[i]) {
				t.Errorf("workers=%d scenario %d differs from workers=1", workers, i)
			}
		}
	}
}
