package sim

import (
	"fmt"
	"math"
	"sync"

	"wroofline/internal/engine"
	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/resources"
	"wroofline/internal/trace"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// Plan is a workflow compiled for repeated simulation. Compile resolves and
// validates everything that is identical across Monte Carlo trials — phase
// programs, the dependency structure as index slices, link bandwidths, the
// partition — so each Run only touches per-trial mutable state, drawn from
// an internal sync.Pool of scratch runs (engine, node pool, links, the
// per-task state table, and the per-phase callback tables are all reused
// across trials).
//
// A Plan is immutable after Compile and safe for concurrent Run calls from
// multiple goroutines; each call checks out its own scratch.
type Plan struct {
	wf   *workflow.Workflow
	cfg  Config
	part *machine.Partition

	nodes        int
	maxTaskNodes int
	sumNodes     int
	total        int

	tasks    []*workflow.Task // ID-sorted, same order wf.Tasks() returns
	index    map[string]int
	programs []Program
	preds    []int     // dependency counts by task index
	succs    [][]int   // successor indices, in Succs' (ID-sorted) order
	staged   []float64 // per-task external+FS payload of the nominal program
	phOff    []int     // phase slot offsets: task i's phase j is slot phOff[i]+j
	slots    int       // total phase slots (phOff[len(tasks)])

	needExternal bool
	needFS       bool
	needBis      bool // network phases exist and the fabric has a bisection limit
	externalBW   float64
	externalCap  float64
	fsBW         float64
	fsCap        float64
	bisBW        float64
	memBW        units.ByteRate // partition EffectiveMemBW, resolved once
	maxEvents    uint64

	// analytic is the precomputed longest-path result for plans the analytic
	// fast path accepts (contention-free, failure-free — see analytic.go);
	// nil when the plan needs the event loop.
	analytic *BatchResult

	scratch sync.Pool // of *trialRun
}

// Trial selects the per-trial variations a compiled plan supports: the knobs
// internal/study's Monte Carlo and failure ensembles turn between trials.
// The zero value reruns the plan exactly as compiled.
type Trial struct {
	// OverrideExternal replaces the plan's external bandwidth and per-flow
	// cap for this trial (with Config.ExternalBW semantics: a zero
	// ExternalBW falls back to the machine's external bandwidth, and a zero
	// cap means uncapped).
	OverrideExternal   bool
	ExternalBW         units.ByteRate
	ExternalPerFlowCap units.ByteRate
	// Failures, when non-nil, replaces the compiled Config.Failures — each
	// ensemble trial carries its own seeded model.
	Failures *failure.Model
}

// Compile validates the workflow, programs, and configuration and returns a
// reusable Plan. It reports the same errors Run does.
func Compile(wf *workflow.Workflow, programs map[string]Program, cfg Config) (*Plan, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("sim: nil machine")
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	part, err := cfg.Machine.Partition(wf.Partition)
	if err != nil {
		return nil, err
	}
	for id := range programs {
		if _, err := wf.Task(id); err != nil {
			return nil, fmt.Errorf("sim: program for unknown task %q", id)
		}
	}

	nodes := part.Nodes
	if cfg.AvailableNodes > 0 {
		nodes = cfg.AvailableNodes
	}
	maxTaskNodes := wf.MaxTaskNodes()
	if maxTaskNodes > nodes {
		return nil, fmt.Errorf("sim: workflow %s needs %d nodes per task but only %d are available",
			wf.Name, maxTaskNodes, nodes)
	}

	// Dry-construct the shared resources once so invalid parameters surface
	// at compile time with the exact errors the per-trial construction would
	// produce.
	dry := engine.New()
	if _, err := resources.NewPool(dry, part.Name, nodes); err != nil {
		return nil, err
	}

	if cfg.Failures.Enabled() && cfg.Failures.Retry.MaxAttempts <= 0 {
		return nil, fmt.Errorf("sim: failure model needs positive max attempts, got %d", cfg.Failures.Retry.MaxAttempts)
	}

	p := &Plan{
		wf:           wf,
		cfg:          cfg,
		part:         part,
		nodes:        nodes,
		maxTaskNodes: maxTaskNodes,
		total:        wf.TotalTasks(),
	}

	p.memBW = part.EffectiveMemBW()

	// Resolve programs and validate them up front.
	hasNetwork := false
	p.tasks = wf.Tasks()
	p.index = make(map[string]int, len(p.tasks))
	for i, t := range p.tasks {
		p.index[t.ID] = i
	}
	p.programs = make([]Program, len(p.tasks))
	p.staged = make([]float64, len(p.tasks))
	p.phOff = make([]int, len(p.tasks)+1)
	for i, t := range p.tasks {
		prog, ok := programs[t.ID]
		if !ok {
			prog = DefaultProgram(t)
		}
		for _, ph := range prog {
			if err := ph.validate(); err != nil {
				return nil, fmt.Errorf("sim: task %q: %w", t.ID, err)
			}
			switch ph.Kind {
			case PhaseExternal:
				if ph.Bytes > 0 {
					p.needExternal = true
				}
			case PhaseFS:
				if ph.Bytes > 0 {
					p.needFS = true
				}
			case PhaseNetwork:
				if ph.Bytes > 0 {
					hasNetwork = true
				}
			}
		}
		p.programs[i] = prog
		p.staged[i] = stagedBytes(prog)
		p.phOff[i] = p.slots
		p.slots += len(prog)
		p.sumNodes += t.Nodes
	}
	p.phOff[len(p.tasks)] = p.slots

	if p.needExternal {
		ext := cfg.Machine.ExternalBW
		if cfg.ExternalBW > 0 {
			ext = cfg.ExternalBW
		}
		if ext <= 0 {
			return nil, fmt.Errorf("sim: workflow %s stages external data but no external bandwidth is configured", wf.Name)
		}
		if _, err := resources.NewLink(dry, "external", float64(ext), float64(cfg.ExternalPerFlowCap)); err != nil {
			return nil, err
		}
		p.externalBW = float64(ext)
		p.externalCap = float64(cfg.ExternalPerFlowCap)
	}
	if p.needFS {
		fsBW, err := cfg.Machine.FSBandwidth(wf.Partition)
		if err != nil {
			return nil, err
		}
		if _, err := resources.NewLink(dry, "filesystem", float64(fsBW), float64(cfg.FSPerFlowCap)); err != nil {
			return nil, err
		}
		p.fsBW = float64(fsBW)
		p.fsCap = float64(cfg.FSPerFlowCap)
	}
	if bisBW, ok := cfg.Machine.BisectionBW[wf.Partition]; ok && hasNetwork {
		if _, err := resources.NewLink(dry, "bisection", float64(bisBW), 0); err != nil {
			return nil, err
		}
		p.needBis = true
		p.bisBW = float64(bisBW)
	}

	// Dependency structure as index slices: counts in, successors out.
	g := wf.Graph()
	p.preds = make([]int, len(p.tasks))
	p.succs = make([][]int, len(p.tasks))
	for i, t := range p.tasks {
		p.preds[i] = len(g.Preds(t.ID))
		if sux := g.Succs(t.ID); len(sux) > 0 {
			idx := make([]int, len(sux))
			for j, s := range sux {
				idx[j] = p.index[s]
			}
			p.succs[i] = idx
		}
	}

	p.maxEvents = cfg.MaxEvents
	if p.maxEvents == 0 {
		p.maxEvents = 10_000_000
	}
	p.computeAnalytic()
	n := len(p.tasks)
	p.scratch.New = func() any {
		r := &trialRun{
			plan:    p,
			eng:     engine.New(),
			deps:    make([]int, n),
			states:  make([]taskState, n),
			results: make([]TaskResult, n),
			startcb: make([]func(), n),
			retrycb: make([]func(), n),
			donecb:  make([]func(), p.slots),
			begins:  make([]float64, p.slots),
		}
		if p.needExternal || p.needFS || p.needBis {
			r.flowcb = make([]func(float64, float64), p.slots)
		}
		if p.needBis {
			r.joincb = make([]func(), p.slots)
			r.joins = make([]int32, p.slots)
		}
		for i := range p.tasks {
			i := i
			r.startcb[i] = func() { r.startAttempt(i) }
			r.retrycb[i] = func() { r.submit(i) }
			off := p.phOff[i]
			for j, ph := range p.programs[i] {
				j, k := j, off+j
				r.donecb[k] = func() { r.phaseDone(i, j, k) }
				switch ph.Kind {
				case PhaseExternal, PhaseFS:
					if r.flowcb != nil {
						r.flowcb[k] = func(_, _ float64) { r.phaseDone(i, j, k) }
					}
				case PhaseNetwork:
					if p.needBis {
						r.joincb[k] = func() { r.joinDone(i, j, k) }
						r.flowcb[k] = func(_, _ float64) { r.joinDone(i, j, k) }
					}
				}
			}
		}
		return r
	}
	return p, nil
}

// Workflow returns the compiled workflow.
func (p *Plan) Workflow() *workflow.Workflow { return p.wf }

// resolveTrial applies a Trial's overrides to the compiled configuration:
// the effective failure model (nil when disabled) and the external link
// geometry for this trial. It reports the same errors for both the full and
// the batch executor.
func (p *Plan) resolveTrial(trial Trial) (fm *failure.Model, externalBW, externalCap float64, err error) {
	fm = p.cfg.Failures
	if trial.Failures != nil {
		fm = trial.Failures
	}
	if !fm.Enabled() {
		fm = nil
	} else if fm.Retry.MaxAttempts <= 0 {
		return nil, 0, 0, fmt.Errorf("sim: failure model needs positive max attempts, got %d", fm.Retry.MaxAttempts)
	}

	externalBW, externalCap = p.externalBW, p.externalCap
	if trial.OverrideExternal {
		ext := p.cfg.Machine.ExternalBW
		if trial.ExternalBW > 0 {
			ext = trial.ExternalBW
		}
		if p.needExternal && ext <= 0 {
			return nil, 0, 0, fmt.Errorf("sim: workflow %s stages external data but no external bandwidth is configured", p.wf.Name)
		}
		externalBW = float64(ext)
		externalCap = float64(trial.ExternalPerFlowCap)
	}
	return fm, externalBW, externalCap, nil
}

// Run executes one trial of the compiled plan. Concurrent calls are safe;
// per-trial state comes from the plan's scratch pool.
func (p *Plan) Run(trial Trial) (*Result, error) {
	fm, externalBW, externalCap, err := p.resolveTrial(trial)
	if err != nil {
		return nil, err
	}

	r := p.scratch.Get().(*trialRun)
	res, err := r.run(p, fm, externalBW, externalCap)
	r.release(p)
	return res, err
}

// release detaches everything that escaped into a Result (or is per-trial)
// and returns the scratch to the pool.
func (r *trialRun) release(p *Plan) {
	r.rec = nil
	r.retrySeconds = nil
	r.fm = nil
	r.faults = nil
	r.failure = nil
	p.scratch.Put(r)
}

// trialRun is the mutable per-trial state: the pooled counterpart of a
// compiled Plan. All task-keyed state is indexed by the plan's task order;
// all phase-keyed state by the plan's flat phase-slot numbering
// (phOff[i]+j). The callback tables (startcb/retrycb/donecb/flowcb/joincb)
// are built once when the scratch is created and reused by every trial, so
// the steady-state event loop allocates no closures at all.
type trialRun struct {
	plan     *Plan
	eng      *engine.Engine
	pool     *resources.Pool
	external *resources.Link // nil when the plan stages no external data
	fs       *resources.Link // nil when the plan touches no file system
	bis      *resources.Link // nil unless the fabric has a bisection limit

	// rec stores spans for the full Result path; nil in scalar (batch) mode,
	// where only the aggregates below are tracked. Both modes validate every
	// span with trace.Validate, so errors are identical.
	rec      *trace.Recorder
	minStart float64
	maxEnd   float64
	spans    int

	deps      []int
	states    []taskState
	results   []TaskResult
	completed int
	failure   error

	// fm is the fault model (nil when disabled); faults drives node outages.
	fm           *failure.Model
	faults       *nodeFaults
	retries      int
	retrySeconds map[string]float64
	scalarRetry  map[string]float64 // reused retrySeconds storage for scalar trials

	// Persistent callback tables, indexed by task (startcb/retrycb) or phase
	// slot (the rest). begins holds each in-flight phase's start time; joins
	// counts a bisection network phase's outstanding completions.
	startcb []func()
	retrycb []func()
	donecb  []func()
	flowcb  []func(float64, float64)
	joincb  []func()
	begins  []float64
	joins   []int32
}

// taskState tracks a task's in-flight background phases and whether the
// foreground chain has finished, plus the failure-model bookkeeping
// (attempt counts, checkpoint progress, the task's fault stream). Without a
// fault model only started/background/chainDone/prog ever change.
type taskState struct {
	// started distinguishes the zero value from an initialized state; the
	// first attempt initializes on demand.
	started    bool
	background int
	chainDone  bool

	// prog is the current attempt's program: the plan's nominal program, or
	// the scaled buffer for partial (failed/checkpoint-resumed) attempts.
	prog Program

	// attempt counts attempts so far (1 on the first run).
	attempt int
	// remaining is the fraction of nominal work still to do (1 initially;
	// shrinks only under checkpointed retries).
	remaining float64
	// doomed marks the current attempt as failing at fraction frac of its
	// planned work, both drawn from stream at attempt start.
	doomed bool
	frac   float64
	// firstStart is the first attempt's start time — the task window origin.
	firstStart float64
	stream     *failure.Stream
	// scaled is the reusable buffer scaleInto fills for partial attempts, so
	// retries do not allocate a program copy. Attempts of one task are
	// strictly sequential, so one buffer per task suffices.
	scaled Program
}

// scaleInto fills the state's scaled buffer with the program's phases scaled
// by factor — the partial execution of a failed or checkpoint-resumed
// attempt.
func (st *taskState) scaleInto(p Program, factor float64) Program {
	buf := st.scaled[:0]
	for _, ph := range p {
		ph.Bytes = units.Bytes(float64(ph.Bytes) * factor)
		ph.Flops = units.Flops(float64(ph.Flops) * factor)
		ph.Seconds *= factor
		buf = append(buf, ph)
	}
	st.scaled = buf
	return buf
}

// simulate prepares the scratch and drains one trial's event loop. In
// scalar mode no Recorder is attached: spans collapse into min-start /
// max-end / count as they are recorded.
func (r *trialRun) simulate(p *Plan, fm *failure.Model, externalBW, externalCap float64, scalar bool) error {
	r.plan = p
	r.eng.Reset()
	r.eng.MaxEvents = p.maxEvents
	if r.pool == nil {
		pool, err := resources.NewPool(r.eng, p.part.Name, p.nodes)
		if err != nil {
			return err
		}
		r.pool = pool
	} else if err := r.pool.Reset(p.nodes); err != nil {
		return err
	}
	if p.needExternal {
		if r.external == nil {
			l, err := resources.NewLink(r.eng, "external", externalBW, externalCap)
			if err != nil {
				return err
			}
			r.external = l
		} else if err := r.external.Reset(externalBW, externalCap); err != nil {
			return err
		}
	}
	if p.needFS {
		if r.fs == nil {
			l, err := resources.NewLink(r.eng, "filesystem", p.fsBW, p.fsCap)
			if err != nil {
				return err
			}
			r.fs = l
		} else if err := r.fs.Reset(p.fsBW, p.fsCap); err != nil {
			return err
		}
	}
	if p.needBis {
		if r.bis == nil {
			l, err := resources.NewLink(r.eng, "bisection", p.bisBW, 0)
			if err != nil {
				return err
			}
			r.bis = l
		} else if err := r.bis.Reset(p.bisBW, 0); err != nil {
			return err
		}
	}

	copy(r.deps, p.preds)
	for i := range r.states {
		r.states[i] = taskState{scaled: r.states[i].scaled[:0]}
	}
	r.completed = 0
	r.failure = nil
	r.retries = 0
	if scalar {
		r.rec = nil
		r.minStart = math.Inf(1)
		r.maxEnd = math.Inf(-1)
		r.spans = 0
	} else {
		r.rec = trace.NewRecorder()
	}
	r.fm = fm
	r.faults = nil
	r.retrySeconds = nil
	if fm != nil {
		if scalar {
			if r.scalarRetry == nil {
				r.scalarRetry = make(map[string]float64)
			}
			clear(r.scalarRetry)
			r.retrySeconds = r.scalarRetry
		} else {
			r.retrySeconds = make(map[string]float64)
		}
		if fm.NodeMTBF > 0 {
			r.faults = newNodeFaults(r, p.nodes, p.maxTaskNodes)
		}
	}

	if r.faults != nil {
		r.faults.arm()
	}
	for i := range p.tasks {
		if r.deps[i] == 0 {
			r.submit(i)
		}
	}

	if err := r.eng.Run(); err != nil {
		return err
	}
	if r.failure != nil {
		return r.failure
	}
	if r.completed != p.total {
		return fmt.Errorf("sim: only %d of %d tasks completed (dependency deadlock?)",
			r.completed, p.total)
	}
	return nil
}

// run executes one trial on checked-out scratch and builds the full Result.
func (r *trialRun) run(p *Plan, fm *failure.Model, externalBW, externalCap float64) (*Result, error) {
	if err := r.simulate(p, fm, externalBW, externalCap, false); err != nil {
		return nil, err
	}

	mk := r.rec.Makespan()
	res := &Result{
		Makespan:       mk,
		Tasks:          make(map[string]TaskResult, p.total),
		Recorder:       r.rec,
		PeakNodesInUse: r.pool.PeakInUse(),
	}
	for i, t := range p.tasks {
		res.Tasks[t.ID] = r.results[i]
	}
	if mk > 0 {
		res.Throughput = float64(p.total) / mk
	}
	if r.fm != nil {
		res.Attempts = make(map[string]int, p.total)
		for i, t := range p.tasks {
			if r.states[i].started {
				res.Attempts[t.ID] = r.states[i].attempt
			}
		}
		res.Retries = r.retries
		res.RetrySeconds = r.retrySeconds
		if r.faults != nil {
			res.NodeFailures = r.faults.failures
		}
	}
	return res, nil
}

// fail records the first error; the engine keeps draining but the run
// reports the failure. The node-fault process stops so the drain is finite.
func (r *trialRun) fail(err error) {
	if r.failure == nil {
		r.failure = err
	}
	if r.faults != nil {
		r.faults.stop()
	}
}

// record validates and accounts one span: appended to the Recorder on the
// full path, collapsed into the min/max aggregates in scalar mode.
func (r *trialRun) record(task, phase string, start, end float64) bool {
	s := trace.Span{Task: task, Phase: phase, Start: start, End: end}
	if r.rec != nil {
		if err := r.rec.Record(s); err != nil {
			r.fail(err)
			return false
		}
		return true
	}
	if err := trace.Validate(s); err != nil {
		r.fail(err)
		return false
	}
	if start < r.minStart {
		r.minStart = start
	}
	if end > r.maxEnd {
		r.maxEnd = end
	}
	r.spans++
	return true
}

// submit queues the task for node allocation.
func (r *trialRun) submit(i int) {
	if err := r.pool.Acquire(r.plan.tasks[i].Nodes, r.startcb[i]); err != nil {
		r.fail(err)
	}
}

// startAttempt begins the next attempt of a task that holds its nodes. With
// no fault model this is exactly the pre-failure execution path: one
// attempt, the unmodified program.
func (r *trialRun) startAttempt(i int) {
	start := r.eng.Now()
	task := r.plan.tasks[i]
	st := &r.states[i]
	if !st.started {
		st.started = true
		st.remaining = 1
		st.firstStart = start
		if r.fm != nil && r.fm.TaskFailProb > 0 {
			st.stream = failure.TaskStream(r.fm.Seed, task.ID)
		}
	}
	st.attempt++
	st.background = 0
	st.chainDone = false
	st.doomed = false
	if st.stream != nil {
		if st.stream.Float64() < r.fm.TaskFailProb {
			st.doomed = true
			st.frac = st.stream.Float64()
		}
	}
	prog := r.plan.programs[i]
	if r.fm != nil {
		// planned = work this attempt would do if it succeeded: the remaining
		// fraction, plus the checkpoint-restart overhead of re-processing
		// completed work. A doomed attempt stops at frac of its plan.
		planned := st.remaining
		if r.fm.Retry.Checkpoint && st.attempt > 1 {
			planned += r.fm.Retry.CheckpointOverhead * (1 - st.remaining)
		}
		factor := planned
		if st.doomed {
			factor *= st.frac
		}
		if factor != 1 {
			prog = st.scaleInto(prog, factor)
		}
	}
	st.prog = prog
	r.execFrom(i, 0)
}

// execFrom runs the current attempt's program from phase j: dispatching
// background phases inline and stopping at the first foreground phase (its
// completion re-enters here at j+1), then completing the task once the
// foreground chain and every background phase are done.
func (r *trialRun) execFrom(i, j int) {
	st := &r.states[i]
	for {
		prog := st.prog
		if j >= len(prog) {
			st.chainDone = true
			r.maybeComplete(i)
			return
		}
		ph := prog[j]
		k := r.plan.phOff[i] + j
		r.begins[k] = r.eng.Now()
		if ph.Background {
			st.background++
			r.dispatch(i, ph, k)
			// The foreground chain continues immediately.
			j++
			continue
		}
		r.dispatch(i, ph, k)
		return
	}
}

// dispatch starts phase slot k; its completion lands in phaseDone (possibly
// synchronously, for zero-byte transfers).
func (r *trialRun) dispatch(i int, ph Phase, k int) {
	switch ph.Kind {
	case PhaseExternal:
		r.transfer(r.external, ph, k)
	case PhaseFS:
		r.transfer(r.fs, ph, k)
	case PhaseNetwork:
		r.network(i, ph, k)
	default:
		d, err := r.plan.nodePhaseSeconds(r.plan.tasks[i], ph)
		if err != nil {
			r.fail(err)
			return
		}
		if _, err := r.eng.Schedule(d, r.donecb[k]); err != nil {
			r.fail(err)
		}
	}
}

// phaseDone finishes phase j (slot k) of task i: record the span, charge
// doomed time, then either settle the background count or continue the
// foreground chain.
func (r *trialRun) phaseDone(i, j, k int) {
	st := &r.states[i]
	ph := st.prog[j]
	begin, end := r.begins[k], r.eng.Now()
	if !r.record(r.plan.tasks[i].ID, ph.label(), begin, end) {
		return
	}
	if st.doomed {
		// The whole attempt is wasted work; charge it to the phase label.
		r.retrySeconds[ph.label()] += end - begin
	}
	if ph.Background {
		st.background--
		r.maybeComplete(i)
		return
	}
	r.execFrom(i, j+1)
}

// maybeComplete finishes the attempt once nothing is outstanding: a doomed
// attempt re-enters the queue after restage + backoff, a clean one completes
// the task.
func (r *trialRun) maybeComplete(i int) {
	st := &r.states[i]
	if !st.chainDone || st.background != 0 {
		return
	}
	if st.doomed {
		r.failAttempt(i, st)
		return
	}
	r.complete(i)
}

// failAttempt handles a failed attempt: release the nodes, pay the
// payload-dependent restage cost and the policy backoff, then re-enter the
// allocation queue — or give up once attempts are exhausted.
func (r *trialRun) failAttempt(i int, st *taskState) {
	task := r.plan.tasks[i]
	r.retries++
	if r.fm.Retry.Checkpoint {
		st.remaining *= 1 - st.frac
	}
	if err := r.pool.Release(task.Nodes); err != nil {
		r.fail(err)
		return
	}
	if st.attempt >= r.fm.Retry.MaxAttempts {
		r.fail(fmt.Errorf("sim: task %q failed permanently after %d attempts", task.ID, st.attempt))
		return
	}
	now := r.eng.Now()
	restage := 0.0
	if r.fm.RestageBytesPerSec > 0 {
		if b := r.plan.staged[i]; b > 0 {
			restage = b / r.fm.RestageBytesPerSec
		}
	}
	var u float64
	if r.fm.Retry.JitterFrac > 0 {
		u = st.stream.Float64()
	}
	backoff := r.fm.Retry.Delay(st.attempt, u)
	if restage > 0 {
		if !r.record(task.ID, "restage", now, now+restage) {
			return
		}
		r.retrySeconds["restage"] += restage
	}
	if backoff > 0 {
		if !r.record(task.ID, "backoff", now+restage, now+restage+backoff) {
			return
		}
		r.retrySeconds["backoff"] += backoff
	}
	if _, err := r.eng.Schedule(restage+backoff, r.retrycb[i]); err != nil {
		r.fail(err)
	}
}

// transfer moves the phase bytes over a shared link, scaled by efficiency
// (an 0.5-efficient transfer moves bytes/0.5 effective volume).
func (r *trialRun) transfer(link *resources.Link, ph Phase, k int) {
	if link == nil {
		// Zero-byte phases on an absent link complete immediately.
		if ph.Bytes == 0 {
			r.donecb[k]()
			return
		}
		r.fail(fmt.Errorf("sim: phase %q needs a link that was not configured", ph.label()))
		return
	}
	effective := float64(ph.Bytes) / ph.eff()
	if err := link.Transfer(effective, r.flowcb[k]); err != nil {
		r.fail(err)
	}
}

// network executes a network phase. On a full-bisection fabric (no bis
// link) the per-node NIC injection time is the whole story, exactly as
// before bisection modeling existed. On a Ridgeline fabric the phase also
// pushes its share of cross-bisection traffic through the shared bisection
// link, and completes only when both the injection delay and the fabric
// transfer have finished — concurrent wide phases contend for the fabric
// even when each node's NIC has headroom.
func (r *trialRun) network(i int, ph Phase, k int) {
	task := r.plan.tasks[i]
	d, err := r.plan.nodePhaseSeconds(task, ph)
	if err != nil {
		r.fail(err)
		return
	}
	if r.bis == nil || ph.Bytes == 0 {
		if _, err := r.eng.Schedule(d, r.donecb[k]); err != nil {
			r.fail(err)
		}
		return
	}
	// ph.Bytes is per node; the task injects Nodes x Bytes, of which
	// BisectionShare crosses the cut, inflated by the phase efficiency like
	// every other transfer.
	vol := float64(ph.Bytes) / ph.eff() * float64(task.Nodes) * machine.BisectionShare
	r.joins[k] = 2
	if _, err := r.eng.Schedule(d, r.joincb[k]); err != nil {
		r.fail(err)
		return
	}
	if err := r.bis.Transfer(vol, r.flowcb[k]); err != nil {
		r.fail(err)
	}
}

// joinDone settles one leg of a bisection network phase (NIC injection or
// fabric transfer); the phase finishes when both have landed.
func (r *trialRun) joinDone(i, j, k int) {
	if r.joins[k]--; r.joins[k] == 0 {
		r.phaseDone(i, j, k)
	}
}

// nodePhaseSeconds computes a node-local phase duration from the machine
// peaks and the phase efficiency.
func (p *Plan) nodePhaseSeconds(task *workflow.Task, ph Phase) (float64, error) {
	var peakTime float64
	switch ph.Kind {
	case PhaseNetwork:
		peakTime = units.TimeToMove(ph.Bytes, p.part.NodeNICBW)
	case PhasePCIe:
		peakTime = units.TimeToMove(ph.Bytes, p.part.NodePCIeBW)
	case PhaseMemory:
		peakTime = units.TimeToMove(ph.Bytes, p.memBW)
	case PhaseCompute:
		peakTime = units.TimeToCompute(ph.Flops, p.part.NodeFlops)
	case PhaseFixed:
		return ph.Seconds, nil
	default:
		return 0, fmt.Errorf("sim: task %q: unexpected node phase kind %v", task.ID, ph.Kind)
	}
	if math.IsInf(peakTime, 1) {
		return 0, fmt.Errorf("sim: task %q phase %q uses a resource with zero peak on partition %q",
			task.ID, ph.label(), p.part.Name)
	}
	return peakTime / ph.eff(), nil
}

// complete releases nodes, records the window, and unblocks successors.
func (r *trialRun) complete(i int) {
	task := r.plan.tasks[i]
	st := &r.states[i]
	end := r.eng.Now()
	r.results[i] = TaskResult{Start: st.firstStart, End: end}
	r.completed++
	// A task with an empty program still leaves a marker span so makespan
	// and Gantt output include it.
	if len(r.plan.programs[i]) == 0 {
		if !r.record(task.ID, "noop", st.firstStart, end) {
			return
		}
	}
	if err := r.pool.Release(task.Nodes); err != nil {
		r.fail(err)
		return
	}
	if r.faults != nil && r.completed == r.plan.total {
		// The workflow is done; stop injecting outages so the engine drains.
		r.faults.stop()
	}
	for _, succ := range r.plan.succs[i] {
		r.deps[succ]--
		if r.deps[succ] == 0 {
			r.submit(succ)
		}
	}
}

// nodeFaults is the node-outage process: exponential interarrivals with
// aggregate mean MTBF/nodes take one node out of service at a time;
// repairs return it after the repair time. The process never takes the
// pool below the widest task's requirement, so capacity loss slows the
// workflow without wedging it.
type nodeFaults struct {
	r        *trialRun
	stream   *failure.Stream
	mean     float64 // aggregate interarrival mean (MTBF / nominal nodes)
	repair   float64
	maxDown  int
	down     int
	failures int
	stopped  bool
	next     *engine.Event
	repairs  map[*engine.Event]struct{}
}

// newNodeFaults builds the process (armed separately, before task submission).
func newNodeFaults(r *trialRun, nodes, maxTaskNodes int) *nodeFaults {
	return &nodeFaults{
		r:       r,
		stream:  failure.NodeStream(r.fm.Seed),
		mean:    r.fm.NodeMTBF / float64(nodes),
		repair:  r.fm.NodeRepair,
		maxDown: nodes - maxTaskNodes,
		repairs: make(map[*engine.Event]struct{}),
	}
}

// arm schedules the next outage.
func (nf *nodeFaults) arm() {
	if nf.stopped {
		return
	}
	ev, err := nf.r.eng.Schedule(nf.stream.Exp(nf.mean), nf.fire)
	if err != nil {
		nf.r.fail(err)
		return
	}
	nf.next = ev
}

// fire takes one node down (when the cap allows), schedules its repair, and
// re-arms.
func (nf *nodeFaults) fire() {
	nf.next = nil
	if nf.stopped {
		return
	}
	if nf.down < nf.maxDown {
		if err := nf.r.pool.Offline(1); err != nil {
			nf.r.fail(err)
			return
		}
		nf.down++
		nf.failures++
		var rev *engine.Event
		rev, err := nf.r.eng.Schedule(nf.repair, func() {
			delete(nf.repairs, rev)
			nf.down--
			if err := nf.r.pool.Online(1); err != nil {
				nf.r.fail(err)
			}
		})
		if err != nil {
			nf.r.fail(err)
			return
		}
		nf.repairs[rev] = struct{}{}
	}
	nf.arm()
}

// stop cancels every pending outage and repair so the engine can drain.
func (nf *nodeFaults) stop() {
	if nf.stopped {
		return
	}
	nf.stopped = true
	if nf.next != nil {
		nf.next.Cancel()
		nf.next = nil
	}
	for ev := range nf.repairs {
		ev.Cancel()
	}
	nf.repairs = nil
}
