package sim

import (
	"fmt"
	"math"
	"sync"

	"wroofline/internal/engine"
	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/resources"
	"wroofline/internal/trace"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// Plan is a workflow compiled for repeated simulation. Compile resolves and
// validates everything that is identical across Monte Carlo trials — phase
// programs, the dependency structure as index slices, link bandwidths, the
// partition — so each Run only touches per-trial mutable state, drawn from
// an internal sync.Pool of scratch runs (engine, node pool, links, and the
// per-task state table are all reused across trials).
//
// A Plan is immutable after Compile and safe for concurrent Run calls from
// multiple goroutines; each call checks out its own scratch.
type Plan struct {
	wf   *workflow.Workflow
	cfg  Config
	part *machine.Partition

	nodes        int
	maxTaskNodes int
	total        int

	tasks    []*workflow.Task // ID-sorted, same order wf.Tasks() returns
	index    map[string]int
	programs []Program
	preds    []int     // dependency counts by task index
	succs    [][]int   // successor indices, in Succs' (ID-sorted) order
	staged   []float64 // per-task external+FS payload of the nominal program

	needExternal bool
	needFS       bool
	needBis      bool // network phases exist and the fabric has a bisection limit
	externalBW   float64
	externalCap  float64
	fsBW         float64
	fsCap        float64
	bisBW        float64
	memBW        units.ByteRate // partition EffectiveMemBW, resolved once
	maxEvents    uint64

	scratch sync.Pool // of *trialRun
}

// Trial selects the per-trial variations a compiled plan supports: the knobs
// internal/study's Monte Carlo and failure ensembles turn between trials.
// The zero value reruns the plan exactly as compiled.
type Trial struct {
	// OverrideExternal replaces the plan's external bandwidth and per-flow
	// cap for this trial (with Config.ExternalBW semantics: a zero
	// ExternalBW falls back to the machine's external bandwidth, and a zero
	// cap means uncapped).
	OverrideExternal   bool
	ExternalBW         units.ByteRate
	ExternalPerFlowCap units.ByteRate
	// Failures, when non-nil, replaces the compiled Config.Failures — each
	// ensemble trial carries its own seeded model.
	Failures *failure.Model
}

// Compile validates the workflow, programs, and configuration and returns a
// reusable Plan. It reports the same errors Run does.
func Compile(wf *workflow.Workflow, programs map[string]Program, cfg Config) (*Plan, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("sim: nil machine")
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	part, err := cfg.Machine.Partition(wf.Partition)
	if err != nil {
		return nil, err
	}
	for id := range programs {
		if _, err := wf.Task(id); err != nil {
			return nil, fmt.Errorf("sim: program for unknown task %q", id)
		}
	}

	nodes := part.Nodes
	if cfg.AvailableNodes > 0 {
		nodes = cfg.AvailableNodes
	}
	maxTaskNodes := wf.MaxTaskNodes()
	if maxTaskNodes > nodes {
		return nil, fmt.Errorf("sim: workflow %s needs %d nodes per task but only %d are available",
			wf.Name, maxTaskNodes, nodes)
	}

	// Dry-construct the shared resources once so invalid parameters surface
	// at compile time with the exact errors the per-trial construction would
	// produce.
	dry := engine.New()
	if _, err := resources.NewPool(dry, part.Name, nodes); err != nil {
		return nil, err
	}

	if cfg.Failures.Enabled() && cfg.Failures.Retry.MaxAttempts <= 0 {
		return nil, fmt.Errorf("sim: failure model needs positive max attempts, got %d", cfg.Failures.Retry.MaxAttempts)
	}

	p := &Plan{
		wf:           wf,
		cfg:          cfg,
		part:         part,
		nodes:        nodes,
		maxTaskNodes: maxTaskNodes,
		total:        wf.TotalTasks(),
	}

	p.memBW = part.EffectiveMemBW()

	// Resolve programs and validate them up front.
	hasNetwork := false
	p.tasks = wf.Tasks()
	p.index = make(map[string]int, len(p.tasks))
	for i, t := range p.tasks {
		p.index[t.ID] = i
	}
	p.programs = make([]Program, len(p.tasks))
	p.staged = make([]float64, len(p.tasks))
	for i, t := range p.tasks {
		prog, ok := programs[t.ID]
		if !ok {
			prog = DefaultProgram(t)
		}
		for _, ph := range prog {
			if err := ph.validate(); err != nil {
				return nil, fmt.Errorf("sim: task %q: %w", t.ID, err)
			}
			switch ph.Kind {
			case PhaseExternal:
				if ph.Bytes > 0 {
					p.needExternal = true
				}
			case PhaseFS:
				if ph.Bytes > 0 {
					p.needFS = true
				}
			case PhaseNetwork:
				if ph.Bytes > 0 {
					hasNetwork = true
				}
			}
		}
		p.programs[i] = prog
		p.staged[i] = stagedBytes(prog)
	}

	if p.needExternal {
		ext := cfg.Machine.ExternalBW
		if cfg.ExternalBW > 0 {
			ext = cfg.ExternalBW
		}
		if ext <= 0 {
			return nil, fmt.Errorf("sim: workflow %s stages external data but no external bandwidth is configured", wf.Name)
		}
		if _, err := resources.NewLink(dry, "external", float64(ext), float64(cfg.ExternalPerFlowCap)); err != nil {
			return nil, err
		}
		p.externalBW = float64(ext)
		p.externalCap = float64(cfg.ExternalPerFlowCap)
	}
	if p.needFS {
		fsBW, err := cfg.Machine.FSBandwidth(wf.Partition)
		if err != nil {
			return nil, err
		}
		if _, err := resources.NewLink(dry, "filesystem", float64(fsBW), float64(cfg.FSPerFlowCap)); err != nil {
			return nil, err
		}
		p.fsBW = float64(fsBW)
		p.fsCap = float64(cfg.FSPerFlowCap)
	}
	if bisBW, ok := cfg.Machine.BisectionBW[wf.Partition]; ok && hasNetwork {
		if _, err := resources.NewLink(dry, "bisection", float64(bisBW), 0); err != nil {
			return nil, err
		}
		p.needBis = true
		p.bisBW = float64(bisBW)
	}

	// Dependency structure as index slices: counts in, successors out.
	g := wf.Graph()
	p.preds = make([]int, len(p.tasks))
	p.succs = make([][]int, len(p.tasks))
	for i, t := range p.tasks {
		p.preds[i] = len(g.Preds(t.ID))
		if sux := g.Succs(t.ID); len(sux) > 0 {
			idx := make([]int, len(sux))
			for j, s := range sux {
				idx[j] = p.index[s]
			}
			p.succs[i] = idx
		}
	}

	p.maxEvents = cfg.MaxEvents
	if p.maxEvents == 0 {
		p.maxEvents = 10_000_000
	}
	n := len(p.tasks)
	p.scratch.New = func() any {
		return &trialRun{
			eng:     engine.New(),
			deps:    make([]int, n),
			states:  make([]taskState, n),
			results: make([]TaskResult, n),
		}
	}
	return p, nil
}

// Workflow returns the compiled workflow.
func (p *Plan) Workflow() *workflow.Workflow { return p.wf }

// Run executes one trial of the compiled plan. Concurrent calls are safe;
// per-trial state comes from the plan's scratch pool.
func (p *Plan) Run(trial Trial) (*Result, error) {
	fm := p.cfg.Failures
	if trial.Failures != nil {
		fm = trial.Failures
	}
	if !fm.Enabled() {
		fm = nil
	} else if fm.Retry.MaxAttempts <= 0 {
		return nil, fmt.Errorf("sim: failure model needs positive max attempts, got %d", fm.Retry.MaxAttempts)
	}

	externalBW, externalCap := p.externalBW, p.externalCap
	if trial.OverrideExternal {
		ext := p.cfg.Machine.ExternalBW
		if trial.ExternalBW > 0 {
			ext = trial.ExternalBW
		}
		if p.needExternal && ext <= 0 {
			return nil, fmt.Errorf("sim: workflow %s stages external data but no external bandwidth is configured", p.wf.Name)
		}
		externalBW = float64(ext)
		externalCap = float64(trial.ExternalPerFlowCap)
	}

	r := p.scratch.Get().(*trialRun)
	res, err := r.run(p, fm, externalBW, externalCap)
	// Detach everything that escaped into the Result (or is per-trial) and
	// return the scratch for the next trial.
	r.rec = nil
	r.retrySeconds = nil
	r.fm = nil
	r.faults = nil
	r.failure = nil
	p.scratch.Put(r)
	return res, err
}

// trialRun is the mutable per-trial state: the pooled counterpart of a
// compiled Plan. All task-keyed state is indexed by the plan's task order.
type trialRun struct {
	plan     *Plan
	eng      *engine.Engine
	pool     *resources.Pool
	external *resources.Link // nil when the plan stages no external data
	fs       *resources.Link // nil when the plan touches no file system
	bis      *resources.Link // nil unless the fabric has a bisection limit
	rec      *trace.Recorder

	deps      []int
	states    []taskState
	results   []TaskResult
	completed int
	failure   error

	// fm is the fault model (nil when disabled); faults drives node outages.
	fm           *failure.Model
	faults       *nodeFaults
	retries      int
	retrySeconds map[string]float64
}

// taskState tracks a task's in-flight background phases and whether the
// foreground chain has finished, plus the failure-model bookkeeping
// (attempt counts, checkpoint progress, the task's fault stream). Without a
// fault model only started/background/chainDone ever change.
type taskState struct {
	// started distinguishes the zero value from an initialized state; the
	// first attempt initializes on demand.
	started    bool
	background int
	chainDone  bool

	// attempt counts attempts so far (1 on the first run).
	attempt int
	// remaining is the fraction of nominal work still to do (1 initially;
	// shrinks only under checkpointed retries).
	remaining float64
	// doomed marks the current attempt as failing at fraction frac of its
	// planned work, both drawn from stream at attempt start.
	doomed bool
	frac   float64
	// firstStart is the first attempt's start time — the task window origin.
	firstStart float64
	stream     *failure.Stream
	// scaled is the reusable buffer scaleInto fills for partial attempts, so
	// retries do not allocate a program copy. Attempts of one task are
	// strictly sequential, so one buffer per task suffices.
	scaled Program
}

// scaleInto fills the state's scaled buffer with the program's phases scaled
// by factor — the partial execution of a failed or checkpoint-resumed
// attempt.
func (st *taskState) scaleInto(p Program, factor float64) Program {
	buf := st.scaled[:0]
	for _, ph := range p {
		ph.Bytes = units.Bytes(float64(ph.Bytes) * factor)
		ph.Flops = units.Flops(float64(ph.Flops) * factor)
		ph.Seconds *= factor
		buf = append(buf, ph)
	}
	st.scaled = buf
	return buf
}

// run executes one trial on checked-out scratch.
func (r *trialRun) run(p *Plan, fm *failure.Model, externalBW, externalCap float64) (*Result, error) {
	r.plan = p
	r.eng.Reset()
	r.eng.MaxEvents = p.maxEvents
	if r.pool == nil {
		pool, err := resources.NewPool(r.eng, p.part.Name, p.nodes)
		if err != nil {
			return nil, err
		}
		r.pool = pool
	} else if err := r.pool.Reset(p.nodes); err != nil {
		return nil, err
	}
	if p.needExternal {
		if r.external == nil {
			l, err := resources.NewLink(r.eng, "external", externalBW, externalCap)
			if err != nil {
				return nil, err
			}
			r.external = l
		} else if err := r.external.Reset(externalBW, externalCap); err != nil {
			return nil, err
		}
	}
	if p.needFS {
		if r.fs == nil {
			l, err := resources.NewLink(r.eng, "filesystem", p.fsBW, p.fsCap)
			if err != nil {
				return nil, err
			}
			r.fs = l
		} else if err := r.fs.Reset(p.fsBW, p.fsCap); err != nil {
			return nil, err
		}
	}
	if p.needBis {
		if r.bis == nil {
			l, err := resources.NewLink(r.eng, "bisection", p.bisBW, 0)
			if err != nil {
				return nil, err
			}
			r.bis = l
		} else if err := r.bis.Reset(p.bisBW, 0); err != nil {
			return nil, err
		}
	}

	copy(r.deps, p.preds)
	for i := range r.states {
		r.states[i] = taskState{scaled: r.states[i].scaled[:0]}
	}
	r.completed = 0
	r.failure = nil
	r.retries = 0
	r.rec = trace.NewRecorder()
	r.fm = fm
	r.faults = nil
	r.retrySeconds = nil
	if fm != nil {
		r.retrySeconds = make(map[string]float64)
		if fm.NodeMTBF > 0 {
			r.faults = newNodeFaults(r, p.nodes, p.maxTaskNodes)
		}
	}

	if r.faults != nil {
		r.faults.arm()
	}
	for i := range p.tasks {
		if r.deps[i] == 0 {
			r.submit(i)
		}
	}

	if err := r.eng.Run(); err != nil {
		return nil, err
	}
	if r.failure != nil {
		return nil, r.failure
	}
	if r.completed != p.total {
		return nil, fmt.Errorf("sim: only %d of %d tasks completed (dependency deadlock?)",
			r.completed, p.total)
	}

	mk := r.rec.Makespan()
	res := &Result{
		Makespan:       mk,
		Tasks:          make(map[string]TaskResult, p.total),
		Recorder:       r.rec,
		PeakNodesInUse: r.pool.PeakInUse(),
	}
	for i, t := range p.tasks {
		res.Tasks[t.ID] = r.results[i]
	}
	if mk > 0 {
		res.Throughput = float64(p.total) / mk
	}
	if r.fm != nil {
		res.Attempts = make(map[string]int, p.total)
		for i, t := range p.tasks {
			if r.states[i].started {
				res.Attempts[t.ID] = r.states[i].attempt
			}
		}
		res.Retries = r.retries
		res.RetrySeconds = r.retrySeconds
		if r.faults != nil {
			res.NodeFailures = r.faults.failures
		}
	}
	return res, nil
}

// fail records the first error; the engine keeps draining but the run
// reports the failure. The node-fault process stops so the drain is finite.
func (r *trialRun) fail(err error) {
	if r.failure == nil {
		r.failure = err
	}
	if r.faults != nil {
		r.faults.stop()
	}
}

// submit queues the task for node allocation.
func (r *trialRun) submit(i int) {
	task := r.plan.tasks[i]
	if err := r.pool.Acquire(task.Nodes, func() {
		r.startAttempt(i)
	}); err != nil {
		r.fail(err)
	}
}

// startAttempt begins the next attempt of a task that holds its nodes. With
// no fault model this is exactly the pre-failure execution path: one
// attempt, the unmodified program.
func (r *trialRun) startAttempt(i int) {
	start := r.eng.Now()
	task := r.plan.tasks[i]
	st := &r.states[i]
	if !st.started {
		st.started = true
		st.remaining = 1
		st.firstStart = start
		if r.fm != nil && r.fm.TaskFailProb > 0 {
			st.stream = failure.TaskStream(r.fm.Seed, task.ID)
		}
	}
	st.attempt++
	st.background = 0
	st.chainDone = false
	st.doomed = false
	if st.stream != nil {
		if st.stream.Float64() < r.fm.TaskFailProb {
			st.doomed = true
			st.frac = st.stream.Float64()
		}
	}
	prog := r.plan.programs[i]
	if r.fm != nil {
		// planned = work this attempt would do if it succeeded: the remaining
		// fraction, plus the checkpoint-restart overhead of re-processing
		// completed work. A doomed attempt stops at frac of its plan.
		planned := st.remaining
		if r.fm.Retry.Checkpoint && st.attempt > 1 {
			planned += r.fm.Retry.CheckpointOverhead * (1 - st.remaining)
		}
		factor := planned
		if st.doomed {
			factor *= st.frac
		}
		if factor != 1 {
			prog = st.scaleInto(prog, factor)
		}
	}
	r.execPhases(i, prog, 0, start)
}

// execPhases runs program[idx:] for the task, then completes it once the
// foreground chain and every background phase are done.
func (r *trialRun) execPhases(i int, prog Program, idx int, taskStart float64) {
	st := &r.states[i]
	if idx >= len(prog) {
		st.chainDone = true
		r.maybeComplete(i, taskStart)
		return
	}
	task := r.plan.tasks[i]
	ph := prog[idx]
	begin := r.eng.Now()
	record := func() bool {
		if err := r.rec.Record(trace.Span{
			Task: task.ID, Phase: ph.label(), Start: begin, End: r.eng.Now(),
		}); err != nil {
			r.fail(err)
			return false
		}
		if st.doomed {
			// The whole attempt is wasted work; charge it to the phase label.
			r.retrySeconds[ph.label()] += r.eng.Now() - begin
		}
		return true
	}

	var done func()
	if ph.Background {
		st.background++
		done = func() {
			if !record() {
				return
			}
			st.background--
			r.maybeComplete(i, taskStart)
		}
	} else {
		done = func() {
			if !record() {
				return
			}
			r.execPhases(i, prog, idx+1, taskStart)
		}
	}

	switch ph.Kind {
	case PhaseExternal:
		r.transfer(r.external, ph, done)
	case PhaseFS:
		r.transfer(r.fs, ph, done)
	case PhaseNetwork:
		r.network(task, ph, done)
	default:
		d, err := r.nodePhaseSeconds(task, ph)
		if err != nil {
			r.fail(err)
			break
		}
		if _, err := r.eng.Schedule(d, done); err != nil {
			r.fail(err)
		}
	}
	if ph.Background {
		// The foreground chain continues immediately.
		r.execPhases(i, prog, idx+1, taskStart)
	}
}

// maybeComplete finishes the attempt once nothing is outstanding: a doomed
// attempt re-enters the queue after restage + backoff, a clean one completes
// the task.
func (r *trialRun) maybeComplete(i int, taskStart float64) {
	st := &r.states[i]
	if !st.chainDone || st.background != 0 {
		return
	}
	if st.doomed {
		r.failAttempt(i, st)
		return
	}
	r.complete(i, st.firstStart)
}

// failAttempt handles a failed attempt: release the nodes, pay the
// payload-dependent restage cost and the policy backoff, then re-enter the
// allocation queue — or give up once attempts are exhausted.
func (r *trialRun) failAttempt(i int, st *taskState) {
	task := r.plan.tasks[i]
	r.retries++
	if r.fm.Retry.Checkpoint {
		st.remaining *= 1 - st.frac
	}
	if err := r.pool.Release(task.Nodes); err != nil {
		r.fail(err)
		return
	}
	if st.attempt >= r.fm.Retry.MaxAttempts {
		r.fail(fmt.Errorf("sim: task %q failed permanently after %d attempts", task.ID, st.attempt))
		return
	}
	now := r.eng.Now()
	restage := 0.0
	if r.fm.RestageBytesPerSec > 0 {
		if b := r.plan.staged[i]; b > 0 {
			restage = b / r.fm.RestageBytesPerSec
		}
	}
	var u float64
	if r.fm.Retry.JitterFrac > 0 {
		u = st.stream.Float64()
	}
	backoff := r.fm.Retry.Delay(st.attempt, u)
	if restage > 0 {
		if err := r.rec.Record(trace.Span{Task: task.ID, Phase: "restage", Start: now, End: now + restage}); err != nil {
			r.fail(err)
			return
		}
		r.retrySeconds["restage"] += restage
	}
	if backoff > 0 {
		if err := r.rec.Record(trace.Span{Task: task.ID, Phase: "backoff", Start: now + restage, End: now + restage + backoff}); err != nil {
			r.fail(err)
			return
		}
		r.retrySeconds["backoff"] += backoff
	}
	if _, err := r.eng.Schedule(restage+backoff, func() {
		if err := r.pool.Acquire(task.Nodes, func() { r.startAttempt(i) }); err != nil {
			r.fail(err)
		}
	}); err != nil {
		r.fail(err)
	}
}

// transfer moves the phase bytes over a shared link, scaled by efficiency
// (an 0.5-efficient transfer moves bytes/0.5 effective volume).
func (r *trialRun) transfer(link *resources.Link, ph Phase, done func()) {
	if link == nil {
		// Zero-byte phases on an absent link complete immediately.
		if ph.Bytes == 0 {
			done()
			return
		}
		r.fail(fmt.Errorf("sim: phase %q needs a link that was not configured", ph.label()))
		return
	}
	effective := float64(ph.Bytes) / ph.eff()
	if err := link.Transfer(effective, func(_, _ float64) { done() }); err != nil {
		r.fail(err)
	}
}

// network executes a network phase. On a full-bisection fabric (no bis
// link) the per-node NIC injection time is the whole story, exactly as
// before bisection modeling existed. On a Ridgeline fabric the phase also
// pushes its share of cross-bisection traffic through the shared bisection
// link, and completes only when both the injection delay and the fabric
// transfer have finished — concurrent wide phases contend for the fabric
// even when each node's NIC has headroom.
func (r *trialRun) network(task *workflow.Task, ph Phase, done func()) {
	d, err := r.nodePhaseSeconds(task, ph)
	if err != nil {
		r.fail(err)
		return
	}
	if r.bis == nil || ph.Bytes == 0 {
		if _, err := r.eng.Schedule(d, done); err != nil {
			r.fail(err)
		}
		return
	}
	// ph.Bytes is per node; the task injects Nodes x Bytes, of which
	// BisectionShare crosses the cut, inflated by the phase efficiency like
	// every other transfer.
	vol := float64(ph.Bytes) / ph.eff() * float64(task.Nodes) * machine.BisectionShare
	outstanding := 2
	join := func() {
		if outstanding--; outstanding == 0 {
			done()
		}
	}
	if _, err := r.eng.Schedule(d, join); err != nil {
		r.fail(err)
		return
	}
	if err := r.bis.Transfer(vol, func(_, _ float64) { join() }); err != nil {
		r.fail(err)
	}
}

// nodePhaseSeconds computes a node-local phase duration from the machine
// peaks and the phase efficiency.
func (r *trialRun) nodePhaseSeconds(task *workflow.Task, ph Phase) (float64, error) {
	var peakTime float64
	switch ph.Kind {
	case PhaseNetwork:
		peakTime = units.TimeToMove(ph.Bytes, r.plan.part.NodeNICBW)
	case PhasePCIe:
		peakTime = units.TimeToMove(ph.Bytes, r.plan.part.NodePCIeBW)
	case PhaseMemory:
		peakTime = units.TimeToMove(ph.Bytes, r.plan.memBW)
	case PhaseCompute:
		peakTime = units.TimeToCompute(ph.Flops, r.plan.part.NodeFlops)
	case PhaseFixed:
		return ph.Seconds, nil
	default:
		return 0, fmt.Errorf("sim: task %q: unexpected node phase kind %v", task.ID, ph.Kind)
	}
	if math.IsInf(peakTime, 1) {
		return 0, fmt.Errorf("sim: task %q phase %q uses a resource with zero peak on partition %q",
			task.ID, ph.label(), r.plan.part.Name)
	}
	return peakTime / ph.eff(), nil
}

// complete releases nodes, records the window, and unblocks successors.
func (r *trialRun) complete(i int, taskStart float64) {
	task := r.plan.tasks[i]
	end := r.eng.Now()
	r.results[i] = TaskResult{Start: taskStart, End: end}
	r.completed++
	// A task with an empty program still leaves a marker span so makespan
	// and Gantt output include it.
	if len(r.plan.programs[i]) == 0 {
		if err := r.rec.Record(trace.Span{Task: task.ID, Phase: "noop", Start: taskStart, End: end}); err != nil {
			r.fail(err)
			return
		}
	}
	if err := r.pool.Release(task.Nodes); err != nil {
		r.fail(err)
		return
	}
	if r.faults != nil && r.completed == r.plan.total {
		// The workflow is done; stop injecting outages so the engine drains.
		r.faults.stop()
	}
	for _, succ := range r.plan.succs[i] {
		r.deps[succ]--
		if r.deps[succ] == 0 {
			r.submit(succ)
		}
	}
}

// nodeFaults is the node-outage process: exponential interarrivals with
// aggregate mean MTBF/nodes take one node out of service at a time;
// repairs return it after the repair time. The process never takes the
// pool below the widest task's requirement, so capacity loss slows the
// workflow without wedging it.
type nodeFaults struct {
	r        *trialRun
	stream   *failure.Stream
	mean     float64 // aggregate interarrival mean (MTBF / nominal nodes)
	repair   float64
	maxDown  int
	down     int
	failures int
	stopped  bool
	next     *engine.Event
	repairs  map[*engine.Event]struct{}
}

// newNodeFaults builds the process (armed separately, before task submission).
func newNodeFaults(r *trialRun, nodes, maxTaskNodes int) *nodeFaults {
	return &nodeFaults{
		r:       r,
		stream:  failure.NodeStream(r.fm.Seed),
		mean:    r.fm.NodeMTBF / float64(nodes),
		repair:  r.fm.NodeRepair,
		maxDown: nodes - maxTaskNodes,
		repairs: make(map[*engine.Event]struct{}),
	}
}

// arm schedules the next outage.
func (nf *nodeFaults) arm() {
	if nf.stopped {
		return
	}
	ev, err := nf.r.eng.Schedule(nf.stream.Exp(nf.mean), nf.fire)
	if err != nil {
		nf.r.fail(err)
		return
	}
	nf.next = ev
}

// fire takes one node down (when the cap allows), schedules its repair, and
// re-arms.
func (nf *nodeFaults) fire() {
	nf.next = nil
	if nf.stopped {
		return
	}
	if nf.down < nf.maxDown {
		if err := nf.r.pool.Offline(1); err != nil {
			nf.r.fail(err)
			return
		}
		nf.down++
		nf.failures++
		var rev *engine.Event
		rev, err := nf.r.eng.Schedule(nf.repair, func() {
			delete(nf.repairs, rev)
			nf.down--
			if err := nf.r.pool.Online(1); err != nil {
				nf.r.fail(err)
			}
		})
		if err != nil {
			nf.r.fail(err)
			return
		}
		nf.repairs[rev] = struct{}{}
	}
	nf.arm()
}

// stop cancels every pending outage and repair so the engine can drain.
func (nf *nodeFaults) stop() {
	if nf.stopped {
		return
	}
	nf.stopped = true
	if nf.next != nil {
		nf.next.Cancel()
		nf.next = nil
	}
	for ev := range nf.repairs {
		ev.Cancel()
	}
	nf.repairs = nil
}
