package sim

import (
	"testing"

	"wroofline/internal/machine"
	"wroofline/internal/wfgen"
)

// FuzzBatchPlan drives the batch executor against the per-trial reference
// with fuzzer-chosen plan geometry: wfgen family, machine, DAG shape, work
// variation, link traffic, pool width, and the failure mix of the trial
// set. For every input that compiles, RunBatch and RunScalar must be
// bit-identical to per-trial Plan.Run — the fuzz extension of the
// differential wall in batch_diff_test.go.
func FuzzBatchPlan(f *testing.F) {
	// Seed corpus: every wfgen family, all three machine models, analytic
	// and event-loop plans, queueing pools, and failure-carrying trials.
	f.Add(uint8(0), uint8(0), uint8(1), uint8(1), uint64(3), uint8(2), false, true, uint8(0), uint8(0), uint8(2))
	f.Add(uint8(1), uint8(1), uint8(2), uint8(0), uint64(7), uint8(0), false, true, uint8(0), uint8(1), uint8(3))
	f.Add(uint8(2), uint8(2), uint8(3), uint8(1), uint64(9), uint8(1), false, false, uint8(1), uint8(2), uint8(4))
	f.Add(uint8(3), uint8(0), uint8(2), uint8(1), uint64(5), uint8(3), true, false, uint8(0), uint8(3), uint8(2))
	f.Add(uint8(4), uint8(1), uint8(1), uint8(2), uint64(11), uint8(0), false, false, uint8(2), uint8(0), uint8(4))
	f.Fuzz(func(t *testing.T, famIdx, machIdx, width, depth uint8, seed uint64,
		cv uint8, payload, noFS bool, avail, fail, trials uint8) {
		c := diffCase{
			FamIdx: famIdx, MachIdx: machIdx, Width: width, Depth: depth,
			Seed: seed, CV: cv, Payload: payload, NoFS: noFS,
			Avail: avail, Fail: fail, Trials: trials,
		}
		m, err := machine.ByName(diffMachines[int(c.MachIdx)%len(diffMachines)])
		if err != nil {
			t.Fatal(err)
		}
		wf, err := wfgen.Generate(c.spec())
		if err != nil {
			return // the interpreted spec is invalid; nothing to differentiate
		}
		cfg := Config{Machine: m}
		if c.Avail%4 != 0 {
			cfg.AvailableNodes = 2 + int(c.Avail)%3
		}
		p, err := Compile(wf, nil, cfg)
		if err != nil {
			return
		}
		checkBatchAgainstReference(t, p, c.trials(), "fuzz")
	})
}
