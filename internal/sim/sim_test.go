package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// oneTask builds a workflow with a single task on the given partition.
func oneTask(t *testing.T, part string, nodes int, work workflow.Work) *workflow.Workflow {
	t.Helper()
	w := workflow.New("single", part)
	if err := w.AddTask(&workflow.Task{ID: "t", Nodes: nodes, Work: work}); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFixedPhase(t *testing.T) {
	w := oneTask(t, machine.PartCPU, 1, workflow.Work{})
	res, err := Run(w, map[string]Program{
		"t": {{Kind: PhaseFixed, Seconds: 42, Name: "bash"}},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 42, 1e-9) {
		t.Errorf("makespan = %v, want 42", res.Makespan)
	}
	bd := res.Breakdown()
	if !almost(bd["bash"], 42, 1e-9) {
		t.Errorf("breakdown = %v", bd)
	}
	if !almost(res.Throughput, 1.0/42, 1e-9) {
		t.Errorf("throughput = %v", res.Throughput)
	}
}

func TestComputePhaseUsesNodePeak(t *testing.T) {
	// 38.8 TFLOP per node at the PM-GPU peak of 38.8 TFLOPS = 1 s.
	w := oneTask(t, machine.PartGPU, 4, workflow.Work{})
	res, err := Run(w, map[string]Program{
		"t": {{Kind: PhaseCompute, Flops: 38.8 * units.TFLOP}},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 1, 1e-9) {
		t.Errorf("makespan = %v, want 1", res.Makespan)
	}
}

func TestEfficiencyScalesNodePhase(t *testing.T) {
	w := oneTask(t, machine.PartGPU, 1, workflow.Work{})
	res, err := Run(w, map[string]Program{
		"t": {{Kind: PhaseCompute, Flops: 38.8 * units.TFLOP, Efficiency: 0.42}},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 1/0.42, 1e-9) {
		t.Errorf("makespan = %v, want %v", res.Makespan, 1/0.42)
	}
}

func TestPCIeMemoryNetworkPhases(t *testing.T) {
	// PM-GPU: PCIe 100 GB/s, HBM 6220 GB/s, NIC 100 GB/s per node.
	w := oneTask(t, machine.PartGPU, 1, workflow.Work{})
	res, err := Run(w, map[string]Program{
		"t": {
			{Kind: PhasePCIe, Bytes: 80 * units.GB},     // 0.8 s (CosmoFlow)
			{Kind: PhaseMemory, Bytes: 622 * units.GB},  // 0.1 s
			{Kind: PhaseNetwork, Bytes: 168 * units.GB}, // 1.68 s (BGW@64)
		},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown()
	if !almost(bd["pcie"], 0.8, 1e-9) {
		t.Errorf("pcie = %v, want 0.8", bd["pcie"])
	}
	if !almost(bd["memory"], 0.1, 1e-9) {
		t.Errorf("memory = %v, want 0.1", bd["memory"])
	}
	if !almost(bd["network"], 1.68, 1e-9) {
		t.Errorf("network = %v, want 1.68", bd["network"])
	}
	if !almost(res.Makespan, 2.58, 1e-9) {
		t.Errorf("makespan = %v (phases are sequential)", res.Makespan)
	}
}

func TestSharedFSContention(t *testing.T) {
	// Two 1-node tasks each loading 2.8 TB from the 5.6 TB/s PM-GPU file
	// system concurrently: fair share 2.8 TB/s each -> 1 s both.
	w := workflow.New("fs2", machine.PartGPU)
	for _, id := range []string{"a", "b"} {
		if err := w.AddTask(&workflow.Task{ID: id, Nodes: 1, Work: workflow.Work{FSBytes: 2.8 * units.TB}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(w, nil, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 1, 1e-9) {
		t.Errorf("makespan = %v, want 1 (fair-share contention)", res.Makespan)
	}
}

func TestExternalPerFlowCap(t *testing.T) {
	// LCLS good day: 5 tasks x 1 TB external at a 1 GB/s per-flow cap on a
	// 25 GB/s link: 1000 s each in parallel.
	w := workflow.New("lcls", machine.PartCPU)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("t%d", i)
		if err := w.AddTask(&workflow.Task{ID: id, Nodes: 8, Work: workflow.Work{ExternalBytes: 1 * units.TB}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(w, nil, Config{
		Machine:            machine.Perlmutter(),
		ExternalPerFlowCap: 1 * units.GBPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 1000, 1e-9) {
		t.Errorf("makespan = %v, want 1000 (per-flow capped)", res.Makespan)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	w := workflow.New("chain", machine.PartGPU)
	for _, id := range []string{"epsilon", "sigma"} {
		if err := w.AddTask(&workflow.Task{ID: id, Nodes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AddDep("epsilon", "sigma"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, map[string]Program{
		"epsilon": {{Kind: PhaseFixed, Seconds: 490}},
		"sigma":   {{Kind: PhaseFixed, Seconds: 1289}},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 1779, 1e-9) {
		t.Errorf("makespan = %v, want 1779 (sequential)", res.Makespan)
	}
	if res.Tasks["sigma"].Start < res.Tasks["epsilon"].End-1e-9 {
		t.Errorf("sigma started before epsilon finished: %+v", res.Tasks)
	}
}

func TestNodePoolLimitsConcurrency(t *testing.T) {
	// 3 tasks of 64 nodes on a 128-node allocation: two run, the third
	// waits -> makespan 2 x 10 s.
	w := workflow.New("wall", machine.PartGPU)
	for i := 0; i < 3; i++ {
		if err := w.AddTask(&workflow.Task{ID: fmt.Sprintf("t%d", i), Nodes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	prog := Program{{Kind: PhaseFixed, Seconds: 10}}
	res, err := Run(w, map[string]Program{"t0": prog, "t1": prog, "t2": prog},
		Config{Machine: machine.Perlmutter(), AvailableNodes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 20, 1e-9) {
		t.Errorf("makespan = %v, want 20 (parallelism wall)", res.Makespan)
	}
	if res.PeakNodesInUse != 128 {
		t.Errorf("peak nodes = %d, want 128", res.PeakNodesInUse)
	}
}

func TestDefaultProgramFromWork(t *testing.T) {
	task := &workflow.Task{ID: "t", Nodes: 1, Work: workflow.Work{
		Flops:         1 * units.TFLOP,
		MemBytes:      1 * units.GB,
		PCIeBytes:     2 * units.GB,
		NetworkBytes:  3 * units.GB,
		FSBytes:       4 * units.GB,
		ExternalBytes: 5 * units.GB,
	}}
	prog := DefaultProgram(task)
	if len(prog) != 6 {
		t.Fatalf("default program has %d phases, want 6", len(prog))
	}
	wantOrder := []PhaseKind{PhaseExternal, PhaseFS, PhasePCIe, PhaseMemory, PhaseNetwork, PhaseCompute}
	for i, k := range wantOrder {
		if prog[i].Kind != k {
			t.Errorf("phase %d = %v, want %v", i, prog[i].Kind, k)
		}
	}
	empty := DefaultProgram(&workflow.Task{ID: "e", Nodes: 1})
	if len(empty) != 0 {
		t.Errorf("empty work should give empty program, got %d phases", len(empty))
	}
}

func TestEmptyProgramTaskStillCounted(t *testing.T) {
	w := workflow.New("noop", machine.PartCPU)
	if err := w.AddTask(&workflow.Task{ID: "t", Nodes: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, nil, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Tasks["t"]; !ok {
		t.Error("noop task missing from results")
	}
	if res.Recorder.Len() != 1 {
		t.Errorf("noop task should leave a marker span, got %d", res.Recorder.Len())
	}
}

func TestRunErrors(t *testing.T) {
	pm := machine.Perlmutter()
	w := oneTask(t, machine.PartGPU, 1, workflow.Work{})
	if _, err := Run(w, nil, Config{}); err == nil {
		t.Error("nil machine should fail")
	}
	if _, err := Run(w, map[string]Program{"nope": nil}, Config{Machine: pm}); err == nil {
		t.Error("program for unknown task should fail")
	}
	badPart := workflow.New("x", "nope")
	if err := badPart.AddTask(&workflow.Task{ID: "t", Nodes: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(badPart, nil, Config{Machine: pm}); err == nil {
		t.Error("unknown partition should fail")
	}
	big := oneTask(t, machine.PartGPU, 2000, workflow.Work{})
	if _, err := Run(big, nil, Config{Machine: pm}); err == nil {
		t.Error("oversized task should fail")
	}
	// External bytes without external bandwidth.
	noExt := pm.WithExternalBW(0)
	ext := oneTask(t, machine.PartGPU, 1, workflow.Work{ExternalBytes: units.GB})
	if _, err := Run(ext, nil, Config{Machine: noExt}); err == nil {
		t.Error("external phase without bandwidth should fail")
	}
	// Invalid phase.
	w2 := oneTask(t, machine.PartGPU, 1, workflow.Work{})
	if _, err := Run(w2, map[string]Program{"t": {{Kind: PhaseFixed, Seconds: -1}}}, Config{Machine: pm}); err == nil {
		t.Error("negative fixed phase should fail")
	}
	if _, err := Run(w2, map[string]Program{"t": {{Kind: PhaseKind(99)}}}, Config{Machine: pm}); err == nil {
		t.Error("unknown phase kind should fail")
	}
	if _, err := Run(w2, map[string]Program{"t": {{Kind: PhaseCompute, Flops: -1}}}, Config{Machine: pm}); err == nil {
		t.Error("negative flops should fail")
	}
	if _, err := Run(w2, map[string]Program{"t": {{Kind: PhaseFS, Bytes: units.Bytes(math.NaN())}}}, Config{Machine: pm}); err == nil {
		t.Error("NaN bytes should fail")
	}
	if _, err := Run(w2, map[string]Program{"t": {{Kind: PhaseCompute, Flops: 1, Efficiency: 2}}}, Config{Machine: pm}); err == nil {
		t.Error("efficiency > 1 should fail")
	}
	// PCIe phase on a partition without PCIe (PM-CPU has no GPUs).
	cpuW := oneTask(t, machine.PartCPU, 1, workflow.Work{})
	if _, err := Run(cpuW, map[string]Program{"t": {{Kind: PhasePCIe, Bytes: units.GB}}}, Config{Machine: pm}); err == nil {
		t.Error("PCIe phase on CPU partition should fail")
	}
}

func TestPhaseKindStrings(t *testing.T) {
	kinds := map[PhaseKind]string{
		PhaseExternal: "external", PhaseFS: "filesystem", PhaseNetwork: "network",
		PhasePCIe: "pcie", PhaseMemory: "memory", PhaseCompute: "compute", PhaseFixed: "fixed",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if !strings.Contains(PhaseKind(42).String(), "42") {
		t.Error("unknown kind should print its value")
	}
}

func TestExternalBWOverride(t *testing.T) {
	// Bad day: override external to 0.2 GB/s per flow on a 1 GB/s link.
	cori := machine.CoriHaswell()
	w := oneTask(t, machine.PartHaswell, 32, workflow.Work{ExternalBytes: 1 * units.TB})
	res, err := Run(w, nil, Config{
		Machine:            cori,
		ExternalBW:         1 * units.GBPS,
		ExternalPerFlowCap: 0.2 * units.GBPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 5000, 1e-9) {
		t.Errorf("bad-day makespan = %v, want 5000", res.Makespan)
	}
}

// Property: the makespan of a linear chain equals the sum of fixed phase
// durations; for independent equal tasks with enough nodes it equals the
// single-task duration.
func TestQuickMakespanStructure(t *testing.T) {
	pm := machine.Perlmutter()
	f := func(durs []uint8) bool {
		n := len(durs)
		if n == 0 || n > 8 {
			return true
		}
		// Chain.
		chain := workflow.New("chain", machine.PartCPU)
		sum := 0.0
		progs := map[string]Program{}
		for i, d := range durs {
			id := fmt.Sprintf("t%d", i)
			if err := chain.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
				return false
			}
			dur := float64(d%50) + 1
			sum += dur
			progs[id] = Program{{Kind: PhaseFixed, Seconds: dur}}
			if i > 0 {
				if err := chain.AddDep(fmt.Sprintf("t%d", i-1), id); err != nil {
					return false
				}
			}
		}
		res, err := Run(chain, progs, Config{Machine: pm})
		if err != nil {
			return false
		}
		if !almost(res.Makespan, sum, 1e-9) {
			return false
		}
		// Independent.
		par := workflow.New("par", machine.PartCPU)
		maxDur := 0.0
		progs2 := map[string]Program{}
		for i, d := range durs {
			id := fmt.Sprintf("t%d", i)
			if err := par.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
				return false
			}
			dur := float64(d%50) + 1
			if dur > maxDur {
				maxDur = dur
			}
			progs2[id] = Program{{Kind: PhaseFixed, Seconds: dur}}
		}
		res2, err := Run(par, progs2, Config{Machine: pm})
		if err != nil {
			return false
		}
		return almost(res2.Makespan, maxDur, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: adding contention (more tasks sharing a link) never reduces
// makespan.
func TestQuickContentionMonotone(t *testing.T) {
	pm := machine.Perlmutter()
	build := func(n int) (*workflow.Workflow, error) {
		w := workflow.New("c", machine.PartGPU)
		for i := 0; i < n; i++ {
			if err := w.AddTask(&workflow.Task{
				ID: fmt.Sprintf("t%d", i), Nodes: 1,
				Work: workflow.Work{FSBytes: 10 * units.TB},
			}); err != nil {
				return nil, err
			}
		}
		return w, nil
	}
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw%10)+1, int(bRaw%10)+1
		if a > b {
			a, b = b, a
		}
		wa, err := build(a)
		if err != nil {
			return false
		}
		wb, err := build(b)
		if err != nil {
			return false
		}
		ra, err := Run(wa, nil, Config{Machine: pm})
		if err != nil {
			return false
		}
		rb, err := Run(wb, nil, Config{Machine: pm})
		if err != nil {
			return false
		}
		return rb.Makespan >= ra.Makespan-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBackgroundPhaseOverlaps(t *testing.T) {
	// A 10 s background network exchange overlapped with 6 s of compute:
	// the task takes max(10, 6) = 10 s, not 16.
	w := oneTask(t, machine.PartGPU, 1, workflow.Work{})
	res, err := Run(w, map[string]Program{
		"t": {
			{Kind: PhaseNetwork, Bytes: 1000 * units.GB, Background: true}, // 10 s at 100 GB/s
			{Kind: PhaseCompute, Flops: 6 * 38.8 * units.TFLOP},            // 6 s
		},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 10, 1e-9) {
		t.Errorf("makespan = %v, want 10 (overlapped)", res.Makespan)
	}
	// Both spans recorded.
	bd := res.Breakdown()
	if !almost(bd["network"], 10, 1e-9) || !almost(bd["compute"], 6, 1e-9) {
		t.Errorf("breakdown = %v", bd)
	}
}

func TestBackgroundShorterThanChain(t *testing.T) {
	// Background 2 s behind an 8 s chain: the chain dominates.
	w := oneTask(t, machine.PartGPU, 1, workflow.Work{})
	res, err := Run(w, map[string]Program{
		"t": {
			{Kind: PhaseFixed, Seconds: 2, Background: true, Name: "bg"},
			{Kind: PhaseFixed, Seconds: 8, Name: "fg"},
		},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 8, 1e-9) {
		t.Errorf("makespan = %v, want 8", res.Makespan)
	}
}

func TestAllBackgroundPhases(t *testing.T) {
	// A program of only background phases completes at the longest one.
	w := oneTask(t, machine.PartGPU, 1, workflow.Work{})
	res, err := Run(w, map[string]Program{
		"t": {
			{Kind: PhaseFixed, Seconds: 3, Background: true, Name: "a"},
			{Kind: PhaseFixed, Seconds: 7, Background: true, Name: "b"},
			{Kind: PhaseFixed, Seconds: 5, Background: true, Name: "c"},
		},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 7, 1e-9) {
		t.Errorf("makespan = %v, want 7", res.Makespan)
	}
}

func TestBackgroundHoldsDependents(t *testing.T) {
	// A successor must wait for the predecessor's background phase too.
	w := workflow.New("bgdep", machine.PartGPU)
	for _, id := range []string{"a", "b"} {
		if err := w.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AddDep("a", "b"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, map[string]Program{
		"a": {
			{Kind: PhaseFixed, Seconds: 9, Background: true, Name: "slow-bg"},
			{Kind: PhaseFixed, Seconds: 1, Name: "fast-fg"},
		},
		"b": {{Kind: PhaseFixed, Seconds: 1}},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks["b"].Start < 9-1e-9 {
		t.Errorf("b started at %v, want >= 9 (a's background must finish)", res.Tasks["b"].Start)
	}
	if !almost(res.Makespan, 10, 1e-9) {
		t.Errorf("makespan = %v, want 10", res.Makespan)
	}
}

// The overlap ablation on BGW: hiding the MPI exchange behind compute
// shaves exactly the network time off the makespan.
func TestBackgroundBGWOverlapAblation(t *testing.T) {
	base, err := Run(mustBGWLike(t), map[string]Program{
		"t": {
			{Kind: PhaseNetwork, Bytes: 84 * units.GB},
			{Kind: PhaseCompute, Flops: 18.19 * units.PFLOP, Efficiency: 0.42},
		},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	overlapped, err := Run(mustBGWLike(t), map[string]Program{
		"t": {
			{Kind: PhaseNetwork, Bytes: 84 * units.GB, Background: true},
			{Kind: PhaseCompute, Flops: 18.19 * units.PFLOP, Efficiency: 0.42},
		},
	}, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	netTime := 0.84
	if !almost(base.Makespan-overlapped.Makespan, netTime, 1e-6) {
		t.Errorf("overlap saved %v, want %v", base.Makespan-overlapped.Makespan, netTime)
	}
}

func mustBGWLike(t *testing.T) *workflow.Workflow {
	t.Helper()
	w := workflow.New("bgwlike", machine.PartGPU)
	if err := w.AddTask(&workflow.Task{ID: "t", Nodes: 64}); err != nil {
		t.Fatal(err)
	}
	return w
}

// Property: with a foreground chain and background phases, the makespan is
// max(sum of foreground, longest prefix-start background end). For programs
// where all background phases start at t=0 (declared first), that is
// max(chain, max background).
func TestQuickBackgroundMakespan(t *testing.T) {
	pm := machine.Perlmutter()
	f := func(bgRaw []uint8, fgRaw uint8) bool {
		if len(bgRaw) == 0 || len(bgRaw) > 6 {
			return true
		}
		w := workflow.New("q", machine.PartCPU)
		if err := w.AddTask(&workflow.Task{ID: "t", Nodes: 1}); err != nil {
			return false
		}
		var prog Program
		maxBG := 0.0
		for _, b := range bgRaw {
			d := float64(b%50) + 1
			if d > maxBG {
				maxBG = d
			}
			prog = append(prog, Phase{Kind: PhaseFixed, Seconds: d, Background: true})
		}
		fg := float64(fgRaw%50) + 1
		prog = append(prog, Phase{Kind: PhaseFixed, Seconds: fg})
		res, err := Run(w, map[string]Program{"t": prog}, Config{Machine: pm})
		if err != nil {
			return false
		}
		want := math.Max(maxBG, fg)
		return almost(res.Makespan, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
