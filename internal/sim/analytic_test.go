package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/wfgen"
	"wroofline/internal/workflow"
)

// This file pins the analytic fast path's eligibility predicate to its spec
// (see the computeAnalytic comment): a plan it accepts must reproduce the
// event loop's scalars bit for bit, and a plan with any contention channel,
// compiled failure model, or allocation queueing must be rejected. Quick
// counterexamples are committed to testdata/analytic_corpus.json so a
// failure becomes a permanent regression case.

// analyticWitness names the first structural disqualifier the predicate
// must honor, or "" when none applies. wfgen-generated plans cannot trip
// the remaining rejection causes (event budget, invalid durations,
// unreachable tasks), so for them "" means "must be analytic".
func analyticWitness(p *Plan) string {
	switch {
	case p.cfg.Failures.Enabled():
		return "compiled failure model"
	case p.needExternal:
		return "external link contention"
	case p.needFS:
		return "file-system link contention"
	case p.needBis:
		return "bisection link contention"
	case p.sumNodes > p.nodes:
		return "allocation queueing"
	}
	return ""
}

// analyticCheck is the predicate property for one generated case, returned
// as an error so quick failures can be committed to the corpus before the
// test dies.
func (c diffCase) analyticCheck() error {
	m, err := machine.ByName(diffMachines[int(c.MachIdx)%len(diffMachines)])
	if err != nil {
		return err
	}
	wf, err := wfgen.Generate(c.spec())
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	cfg := Config{Machine: m}
	if c.Avail%4 != 0 {
		cfg.AvailableNodes = 2 + int(c.Avail)%3
	}
	p, err := Compile(wf, nil, cfg)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}

	witness := analyticWitness(p)
	if !p.Analytic() {
		if witness == "" {
			return fmt.Errorf("contention-free, failure-free, queue-free plan rejected by the analytic predicate")
		}
		return nil
	}
	if witness != "" {
		return fmt.Errorf("plan accepted analytically despite %s", witness)
	}

	// Accepted: the cached result must equal the event loop bit for bit.
	res, err := p.Run(Trial{})
	if err != nil {
		return fmt.Errorf("event loop: %w", err)
	}
	want := res.Scalars()
	if got := *p.analytic; got != want {
		return fmt.Errorf("analytic %+v != event loop %+v", got, want)
	}
	br, err := p.RunScalar(Trial{})
	if err != nil {
		return fmt.Errorf("RunScalar: %w", err)
	}
	if br != want {
		return fmt.Errorf("RunScalar %+v != event loop %+v", br, want)
	}
	return nil
}

const analyticCorpusPath = "testdata/analytic_corpus.json"

// readAnalyticCorpus loads the committed counterexample corpus.
func readAnalyticCorpus(t *testing.T) []diffCase {
	t.Helper()
	data, err := os.ReadFile(analyticCorpusPath)
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	var cases []diffCase
	if err := json.Unmarshal(data, &cases); err != nil {
		t.Fatalf("parse corpus: %v", err)
	}
	return cases
}

// commitCounterexample appends a failing quick case to the corpus file so
// it is replayed by TestAnalyticCorpus forever after.
func commitCounterexample(t *testing.T, c diffCase) {
	t.Helper()
	cases := readAnalyticCorpus(t)
	cases = append(cases, c)
	data, err := json.MarshalIndent(cases, "", "  ")
	if err != nil {
		t.Fatalf("marshal corpus: %v", err)
	}
	if err := os.WriteFile(filepath.Clean(analyticCorpusPath), append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write corpus: %v", err)
	}
	t.Logf("counterexample committed to %s: %+v", analyticCorpusPath, c)
}

// TestAnalyticPredicateQuick fuzzes the eligibility predicate over
// randomized plans. A failing case is appended to the committed corpus
// before the test fails.
func TestAnalyticPredicateQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Rand:     rand.New(rand.NewSource(11)),
	}
	var failing *diffCase
	var failErr error
	if err := quick.Check(func(c diffCase) bool {
		if err := c.analyticCheck(); err != nil {
			if failing == nil {
				cc := c
				failing, failErr = &cc, err
			}
			return false
		}
		return true
	}, cfg); err != nil {
		if failing != nil {
			commitCounterexample(t, *failing)
			t.Fatalf("predicate property failed for %+v: %v", *failing, failErr)
		}
		t.Fatal(err)
	}
}

// TestAnalyticCorpus replays every committed case — seed cases covering
// both sides of the predicate plus any quick counterexamples committed
// since.
func TestAnalyticCorpus(t *testing.T) {
	cases := readAnalyticCorpus(t)
	if len(cases) == 0 {
		t.Fatal("empty corpus")
	}
	for i, c := range cases {
		if err := c.analyticCheck(); err != nil {
			t.Errorf("corpus case %d %+v: %v", i, c, err)
		}
	}
}

// TestAnalyticRejects pins each rejection clause with a directed witness.
func TestAnalyticRejects(t *testing.T) {
	base := func() (*workflow.Workflow, map[string]Program) {
		wf := workflow.New("pin", machine.PartCPU)
		for _, id := range []string{"a", "b"} {
			if err := wf.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := wf.AddDep("a", "b"); err != nil {
			t.Fatal(err)
		}
		progs := map[string]Program{
			"a": {{Kind: PhaseFixed, Seconds: 3, Name: "a"}},
			"b": {{Kind: PhaseFixed, Seconds: 5, Name: "b"}},
		}
		return wf, progs
	}

	t.Run("accepted-baseline", func(t *testing.T) {
		wf, progs := base()
		p, err := Compile(wf, progs, Config{Machine: machine.Perlmutter()})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Analytic() {
			t.Fatal("baseline plan should take the analytic path")
		}
		br, err := p.RunScalar(Trial{})
		if err != nil {
			t.Fatal(err)
		}
		if br.Makespan != 8 {
			t.Fatalf("makespan %v, want 8", br.Makespan)
		}
	})

	t.Run("external-contention", func(t *testing.T) {
		wf, progs := base()
		progs["a"] = append(Program{{Kind: PhaseExternal, Bytes: units.Bytes(1e9), Name: "stage"}}, progs["a"]...)
		p, err := Compile(wf, progs, Config{Machine: machine.Perlmutter(), ExternalBW: units.ByteRate(1e9)})
		if err != nil {
			t.Fatal(err)
		}
		if p.Analytic() {
			t.Fatal("external flow must disqualify the analytic path")
		}
	})

	t.Run("fs-contention", func(t *testing.T) {
		wf, progs := base()
		progs["b"] = append(progs["b"], Phase{Kind: PhaseFS, Bytes: units.Bytes(1e9), Name: "write"})
		p, err := Compile(wf, progs, Config{Machine: machine.Perlmutter()})
		if err != nil {
			t.Fatal(err)
		}
		if p.Analytic() {
			t.Fatal("file-system flow must disqualify the analytic path")
		}
	})

	t.Run("failure-model", func(t *testing.T) {
		wf, progs := base()
		fs := failure.Spec{
			TaskFailProb: 0.1,
			Seed:         3,
			Retry:        &failure.RetrySpec{MaxAttempts: 3},
		}
		fm, err := fs.Compile()
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(wf, progs, Config{Machine: machine.Perlmutter(), Failures: fm})
		if err != nil {
			t.Fatal(err)
		}
		if p.Analytic() {
			t.Fatal("a compiled failure model must disqualify the analytic path")
		}
	})

	t.Run("disabled-failure-model-accepted", func(t *testing.T) {
		wf, progs := base()
		p, err := Compile(wf, progs, Config{Machine: machine.Perlmutter(), Failures: &failure.Model{}})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Analytic() {
			t.Fatal("a disabled failure model simulates a failure-free system and must stay analytic")
		}
	})

	t.Run("allocation-queueing", func(t *testing.T) {
		wf, progs := base()
		p, err := Compile(wf, progs, Config{Machine: machine.Perlmutter(), AvailableNodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if p.Analytic() {
			t.Fatal("a pool narrower than the workflow can queue and must disqualify the analytic path")
		}
	})

	t.Run("event-budget", func(t *testing.T) {
		wf, progs := base()
		p, err := Compile(wf, progs, Config{Machine: machine.Perlmutter(), MaxEvents: 1})
		if err != nil {
			t.Fatal(err)
		}
		if p.Analytic() {
			t.Fatal("a plan over the event budget must stay on the event loop so the budget error is reported")
		}
		if _, err := p.Run(Trial{}); err == nil {
			t.Fatal("the event loop should reject the run over its event budget")
		}
	})

	t.Run("trial-failure-model-falls-back", func(t *testing.T) {
		wf, progs := base()
		p, err := Compile(wf, progs, Config{Machine: machine.Perlmutter()})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Analytic() {
			t.Fatal("baseline plan should take the analytic path")
		}
		// Scan seeds for a trial that retries and still completes: a nonzero
		// retry count proves the event loop ran instead of the cached result.
		proven := false
		for seed := uint64(1); seed <= 64; seed++ {
			fs := failure.Spec{
				TaskFailProb: 0.5,
				Seed:         seed,
				Retry:        &failure.RetrySpec{MaxAttempts: 8, BackoffSeconds: 1},
			}
			fm, err := fs.Compile()
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(Trial{Failures: fm})
			if err != nil {
				continue // permanent failure: both paths must agree on the error too,
				// but that's the differential wall's job
			}
			br, err := p.RunScalar(Trial{Failures: fm})
			if err != nil {
				t.Fatal(err)
			}
			if br != res.Scalars() {
				t.Fatalf("seed %d: trial-model scalar %+v != event loop %+v", seed, br, res.Scalars())
			}
			if br.Retries > 0 {
				proven = true
				break
			}
		}
		if !proven {
			t.Fatal("no seed in [1,64] produced a retried, completed trial; the fallback is unproven")
		}
	})
}
