// Package sim executes workflows on a modeled HPC system using discrete-
// event simulation. It is the substrate that replaces the paper's real runs
// on Perlmutter and Cori: tasks are phase programs (stage data externally,
// load from the file system, move bytes over PCIe/memory/network, compute,
// pay fixed control-flow overheads) executed against shared links with
// max-min fair contention and a finite node pool.
//
// The simulator produces the quantities the Workflow Roofline methodology
// consumes: the makespan, the achieved throughput, per-phase time breakdowns
// (Fig 5b, Fig 10b), and per-task spans for Gantt charts (Fig 7d).
package sim

import (
	"fmt"
	"math"

	"wroofline/internal/engine"
	"wroofline/internal/machine"
	"wroofline/internal/resources"
	"wroofline/internal/trace"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// PhaseKind selects which resource a phase exercises.
type PhaseKind int

// Phase kinds.
const (
	// PhaseExternal moves Bytes (total for the task) over the shared
	// external/DTN link.
	PhaseExternal PhaseKind = iota
	// PhaseFS moves Bytes (total for the task) over the shared parallel
	// file system.
	PhaseFS
	// PhaseNetwork moves Bytes per node at the node NIC bandwidth.
	PhaseNetwork
	// PhasePCIe moves Bytes per node at the node PCIe bandwidth.
	PhasePCIe
	// PhaseMemory moves Bytes per node at the node memory bandwidth.
	PhaseMemory
	// PhaseCompute executes Flops per node at the node compute peak.
	PhaseCompute
	// PhaseFixed takes Seconds of wall time regardless of resources
	// (interpreter startup, bash, metadata handling).
	PhaseFixed
)

// String names the kind (also the default trace label).
func (k PhaseKind) String() string {
	switch k {
	case PhaseExternal:
		return "external"
	case PhaseFS:
		return "filesystem"
	case PhaseNetwork:
		return "network"
	case PhasePCIe:
		return "pcie"
	case PhaseMemory:
		return "memory"
	case PhaseCompute:
		return "compute"
	case PhaseFixed:
		return "fixed"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one sequential step of a task program.
type Phase struct {
	// Name labels the phase in traces; defaults to the kind name.
	Name string
	// Kind selects the resource.
	Kind PhaseKind
	// Bytes is the data volume: total task bytes for External/FS phases,
	// per-node bytes for Network/PCIe/Memory phases.
	Bytes units.Bytes
	// Flops is the per-node floating-point work for Compute phases.
	Flops units.Flops
	// Seconds is the duration of Fixed phases.
	Seconds float64
	// Efficiency is the achieved fraction of peak in (0, 1]; zero means 1.
	// It calibrates node phases to measured data (e.g. BGW runs at ~42% of
	// the node compute peak at 64 nodes).
	Efficiency float64
	// Background starts the phase and immediately proceeds to the next one;
	// the task completes only when every background phase has finished.
	// This models compute/communication overlap within a task (e.g. MPI
	// exchange hidden behind GPU kernels).
	Background bool
}

// label returns the trace label.
func (p Phase) label() string {
	if p.Name != "" {
		return p.Name
	}
	return p.Kind.String()
}

// eff returns the efficiency with the zero default applied.
func (p Phase) eff() float64 {
	if p.Efficiency == 0 {
		return 1
	}
	return p.Efficiency
}

// validate checks the phase is well-formed.
func (p Phase) validate() error {
	if p.Efficiency < 0 || p.Efficiency > 1 {
		return fmt.Errorf("sim: phase %q efficiency %v outside (0,1]", p.label(), p.Efficiency)
	}
	switch p.Kind {
	case PhaseExternal, PhaseFS, PhaseNetwork, PhasePCIe, PhaseMemory:
		if p.Bytes < 0 || math.IsNaN(float64(p.Bytes)) || math.IsInf(float64(p.Bytes), 0) {
			return fmt.Errorf("sim: phase %q has invalid byte volume %v", p.label(), float64(p.Bytes))
		}
	case PhaseCompute:
		if p.Flops < 0 || math.IsNaN(float64(p.Flops)) || math.IsInf(float64(p.Flops), 0) {
			return fmt.Errorf("sim: phase %q has invalid flop count %v", p.label(), float64(p.Flops))
		}
	case PhaseFixed:
		if p.Seconds < 0 || math.IsNaN(p.Seconds) || math.IsInf(p.Seconds, 0) {
			return fmt.Errorf("sim: phase %q has invalid duration %v", p.label(), p.Seconds)
		}
	default:
		return fmt.Errorf("sim: phase %q has unknown kind %d", p.label(), int(p.Kind))
	}
	return nil
}

// Program is a task's sequential phase list.
type Program []Phase

// DefaultProgram derives a program from a task's characterized work vector:
// external staging, file-system load, PCIe transfer, memory traffic,
// network exchange, then compute. Unused components produce no phases.
func DefaultProgram(t *workflow.Task) Program {
	var p Program
	if t.Work.ExternalBytes > 0 {
		p = append(p, Phase{Kind: PhaseExternal, Bytes: t.Work.ExternalBytes})
	}
	if t.Work.FSBytes > 0 {
		p = append(p, Phase{Kind: PhaseFS, Bytes: t.Work.FSBytes})
	}
	if t.Work.PCIeBytes > 0 {
		p = append(p, Phase{Kind: PhasePCIe, Bytes: t.Work.PCIeBytes})
	}
	if t.Work.MemBytes > 0 {
		p = append(p, Phase{Kind: PhaseMemory, Bytes: t.Work.MemBytes})
	}
	if t.Work.NetworkBytes > 0 {
		p = append(p, Phase{Kind: PhaseNetwork, Bytes: t.Work.NetworkBytes})
	}
	if t.Work.Flops > 0 {
		p = append(p, Phase{Kind: PhaseCompute, Flops: t.Work.Flops})
	}
	return p
}

// Config tunes a simulation run.
type Config struct {
	// Machine is the system model (required).
	Machine *machine.Machine
	// AvailableNodes overrides the partition node count (0 keeps it).
	AvailableNodes int
	// ExternalBW overrides the machine external bandwidth (0 keeps it).
	ExternalBW units.ByteRate
	// ExternalPerFlowCap caps each task's external transfer rate (LCLS
	// observes ~1 GB/s per stream on good days); 0 means uncapped.
	ExternalPerFlowCap units.ByteRate
	// FSPerFlowCap caps each task's file-system rate; 0 means uncapped.
	FSPerFlowCap units.ByteRate
	// MaxEvents guards against scheduling loops (default 10 million).
	MaxEvents uint64
}

// TaskResult is one task's execution window.
type TaskResult struct {
	// Start and End are virtual seconds.
	Start, End float64
}

// Duration returns End - Start.
func (t TaskResult) Duration() float64 { return t.End - t.Start }

// Result is a completed simulation.
type Result struct {
	// Makespan is the end-to-end virtual time (first start to last end).
	Makespan float64
	// Throughput is total tasks divided by makespan.
	Throughput float64
	// Tasks maps task id to its window.
	Tasks map[string]TaskResult
	// Recorder holds all phase spans for breakdowns and Gantt charts.
	Recorder *trace.Recorder
	// PeakNodesInUse is the allocation high-water mark.
	PeakNodesInUse int
}

// Breakdown returns total seconds per phase label.
func (r *Result) Breakdown() map[string]float64 { return r.Recorder.ByPhase() }

// run holds the per-execution state.
type run struct {
	eng      *engine.Engine
	pool     *resources.Pool
	external *resources.Link // nil when unused
	fs       *resources.Link // nil when unused
	part     *machine.Partition
	rec      *trace.Recorder
	programs map[string]Program
	wf       *workflow.Workflow

	remainingDeps map[string]int
	result        map[string]TaskResult
	states        map[string]*taskState
	failure       error
}

// fail records the first error; the engine keeps draining but the run
// reports the failure.
func (r *run) fail(err error) {
	if r.failure == nil {
		r.failure = err
	}
}

// Run executes the workflow and returns the result. Tasks without an entry
// in programs run their DefaultProgram. Programs for unknown task ids are an
// error.
func Run(wf *workflow.Workflow, programs map[string]Program, cfg Config) (*Result, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("sim: nil machine")
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	part, err := cfg.Machine.Partition(wf.Partition)
	if err != nil {
		return nil, err
	}
	for id := range programs {
		if _, err := wf.Task(id); err != nil {
			return nil, fmt.Errorf("sim: program for unknown task %q", id)
		}
	}

	nodes := part.Nodes
	if cfg.AvailableNodes > 0 {
		nodes = cfg.AvailableNodes
	}
	if req := wf.MaxTaskNodes(); req > nodes {
		return nil, fmt.Errorf("sim: workflow %s needs %d nodes per task but only %d are available",
			wf.Name, req, nodes)
	}

	eng := engine.New()
	eng.MaxEvents = cfg.MaxEvents
	if eng.MaxEvents == 0 {
		eng.MaxEvents = 10_000_000
	}
	pool, err := resources.NewPool(eng, part.Name, nodes)
	if err != nil {
		return nil, err
	}

	r := &run{
		eng:           eng,
		pool:          pool,
		part:          part,
		rec:           trace.NewRecorder(),
		programs:      make(map[string]Program, wf.TotalTasks()),
		wf:            wf,
		remainingDeps: make(map[string]int, wf.TotalTasks()),
		result:        make(map[string]TaskResult, wf.TotalTasks()),
		states:        make(map[string]*taskState, wf.TotalTasks()),
	}

	// Resolve programs and validate them up front.
	needExternal, needFS := false, false
	for _, t := range wf.Tasks() {
		prog, ok := programs[t.ID]
		if !ok {
			prog = DefaultProgram(t)
		}
		for _, ph := range prog {
			if err := ph.validate(); err != nil {
				return nil, fmt.Errorf("sim: task %q: %w", t.ID, err)
			}
			switch ph.Kind {
			case PhaseExternal:
				if ph.Bytes > 0 {
					needExternal = true
				}
			case PhaseFS:
				if ph.Bytes > 0 {
					needFS = true
				}
			}
		}
		r.programs[t.ID] = prog
	}

	if needExternal {
		ext := cfg.Machine.ExternalBW
		if cfg.ExternalBW > 0 {
			ext = cfg.ExternalBW
		}
		if ext <= 0 {
			return nil, fmt.Errorf("sim: workflow %s stages external data but no external bandwidth is configured", wf.Name)
		}
		l, err := resources.NewLink(eng, "external", float64(ext), float64(cfg.ExternalPerFlowCap))
		if err != nil {
			return nil, err
		}
		r.external = l
	}
	if needFS {
		fsBW, err := cfg.Machine.FSBandwidth(wf.Partition)
		if err != nil {
			return nil, err
		}
		l, err := resources.NewLink(eng, "filesystem", float64(fsBW), float64(cfg.FSPerFlowCap))
		if err != nil {
			return nil, err
		}
		r.fs = l
	}

	// Dependency counting; sources submit immediately.
	g := wf.Graph()
	for _, t := range wf.Tasks() {
		r.remainingDeps[t.ID] = len(g.Preds(t.ID))
	}
	for _, t := range wf.Tasks() {
		if r.remainingDeps[t.ID] == 0 {
			r.submit(t.ID)
		}
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if r.failure != nil {
		return nil, r.failure
	}
	if len(r.result) != wf.TotalTasks() {
		return nil, fmt.Errorf("sim: only %d of %d tasks completed (dependency deadlock?)",
			len(r.result), wf.TotalTasks())
	}

	mk := r.rec.Makespan()
	res := &Result{
		Makespan:       mk,
		Tasks:          r.result,
		Recorder:       r.rec,
		PeakNodesInUse: pool.PeakInUse(),
	}
	if mk > 0 {
		res.Throughput = float64(wf.TotalTasks()) / mk
	}
	return res, nil
}

// submit queues the task for node allocation.
func (r *run) submit(id string) {
	task, err := r.wf.Task(id)
	if err != nil {
		r.fail(err)
		return
	}
	if err := r.pool.Acquire(task.Nodes, func() {
		start := r.eng.Now()
		r.states[id] = &taskState{}
		r.execPhases(task, r.programs[id], 0, start)
	}); err != nil {
		r.fail(err)
	}
}

// taskState tracks a task's in-flight background phases and whether the
// foreground chain has finished.
type taskState struct {
	background int
	chainDone  bool
}

// execPhases runs program[idx:] for the task, then completes it once the
// foreground chain and every background phase are done.
func (r *run) execPhases(task *workflow.Task, prog Program, idx int, taskStart float64) {
	st := r.states[task.ID]
	if idx >= len(prog) {
		st.chainDone = true
		r.maybeComplete(task, taskStart)
		return
	}
	ph := prog[idx]
	begin := r.eng.Now()
	record := func() bool {
		if err := r.rec.Record(trace.Span{
			Task: task.ID, Phase: ph.label(), Start: begin, End: r.eng.Now(),
		}); err != nil {
			r.fail(err)
			return false
		}
		return true
	}

	var done func()
	if ph.Background {
		st.background++
		done = func() {
			if !record() {
				return
			}
			st.background--
			r.maybeComplete(task, taskStart)
		}
	} else {
		done = func() {
			if !record() {
				return
			}
			r.execPhases(task, prog, idx+1, taskStart)
		}
	}

	start := func() {
		switch ph.Kind {
		case PhaseExternal:
			r.transfer(r.external, ph, done)
		case PhaseFS:
			r.transfer(r.fs, ph, done)
		default:
			d, err := r.nodePhaseSeconds(task, ph)
			if err != nil {
				r.fail(err)
				return
			}
			if _, err := r.eng.Schedule(d, done); err != nil {
				r.fail(err)
			}
		}
	}
	start()
	if ph.Background {
		// The foreground chain continues immediately.
		r.execPhases(task, prog, idx+1, taskStart)
	}
}

// maybeComplete finishes the task once nothing is outstanding.
func (r *run) maybeComplete(task *workflow.Task, taskStart float64) {
	st := r.states[task.ID]
	if st.chainDone && st.background == 0 {
		r.complete(task, taskStart)
	}
}

// transfer moves the phase bytes over a shared link, scaled by efficiency
// (an 0.5-efficient transfer moves bytes/0.5 effective volume).
func (r *run) transfer(link *resources.Link, ph Phase, done func()) {
	if link == nil {
		// Zero-byte phases on an absent link complete immediately.
		if ph.Bytes == 0 {
			done()
			return
		}
		r.fail(fmt.Errorf("sim: phase %q needs a link that was not configured", ph.label()))
		return
	}
	effective := float64(ph.Bytes) / ph.eff()
	if err := link.Transfer(effective, func(_, _ float64) { done() }); err != nil {
		r.fail(err)
	}
}

// nodePhaseSeconds computes a node-local phase duration from the machine
// peaks and the phase efficiency.
func (r *run) nodePhaseSeconds(task *workflow.Task, ph Phase) (float64, error) {
	var peakTime float64
	switch ph.Kind {
	case PhaseNetwork:
		peakTime = units.TimeToMove(ph.Bytes, r.part.NodeNICBW)
	case PhasePCIe:
		peakTime = units.TimeToMove(ph.Bytes, r.part.NodePCIeBW)
	case PhaseMemory:
		peakTime = units.TimeToMove(ph.Bytes, r.part.NodeMemBW)
	case PhaseCompute:
		peakTime = units.TimeToCompute(ph.Flops, r.part.NodeFlops)
	case PhaseFixed:
		return ph.Seconds, nil
	default:
		return 0, fmt.Errorf("sim: task %q: unexpected node phase kind %v", task.ID, ph.Kind)
	}
	if math.IsInf(peakTime, 1) {
		return 0, fmt.Errorf("sim: task %q phase %q uses a resource with zero peak on partition %q",
			task.ID, ph.label(), r.part.Name)
	}
	return peakTime / ph.eff(), nil
}

// complete releases nodes, records the window, and unblocks successors.
func (r *run) complete(task *workflow.Task, taskStart float64) {
	end := r.eng.Now()
	r.result[task.ID] = TaskResult{Start: taskStart, End: end}
	// A task with an empty program still leaves a marker span so makespan
	// and Gantt output include it.
	if len(r.programs[task.ID]) == 0 {
		if err := r.rec.Record(trace.Span{Task: task.ID, Phase: "noop", Start: taskStart, End: end}); err != nil {
			r.fail(err)
			return
		}
	}
	if err := r.pool.Release(task.Nodes); err != nil {
		r.fail(err)
		return
	}
	for _, succ := range r.wf.Graph().Succs(task.ID) {
		r.remainingDeps[succ]--
		if r.remainingDeps[succ] == 0 {
			r.submit(succ)
		}
	}
}
