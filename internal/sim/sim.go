// Package sim executes workflows on a modeled HPC system using discrete-
// event simulation. It is the substrate that replaces the paper's real runs
// on Perlmutter and Cori: tasks are phase programs (stage data externally,
// load from the file system, move bytes over PCIe/memory/network, compute,
// pay fixed control-flow overheads) executed against shared links with
// max-min fair contention and a finite node pool.
//
// The simulator produces the quantities the Workflow Roofline methodology
// consumes: the makespan, the achieved throughput, per-phase time breakdowns
// (Fig 5b, Fig 10b), and per-task spans for Gantt charts (Fig 7d).
package sim

import (
	"fmt"
	"math"

	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/trace"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// PhaseKind selects which resource a phase exercises.
type PhaseKind int

// Phase kinds.
const (
	// PhaseExternal moves Bytes (total for the task) over the shared
	// external/DTN link.
	PhaseExternal PhaseKind = iota
	// PhaseFS moves Bytes (total for the task) over the shared parallel
	// file system.
	PhaseFS
	// PhaseNetwork moves Bytes per node at the node NIC bandwidth.
	PhaseNetwork
	// PhasePCIe moves Bytes per node at the node PCIe bandwidth.
	PhasePCIe
	// PhaseMemory moves Bytes per node at the node memory bandwidth.
	PhaseMemory
	// PhaseCompute executes Flops per node at the node compute peak.
	PhaseCompute
	// PhaseFixed takes Seconds of wall time regardless of resources
	// (interpreter startup, bash, metadata handling).
	PhaseFixed
)

// String names the kind (also the default trace label).
func (k PhaseKind) String() string {
	switch k {
	case PhaseExternal:
		return "external"
	case PhaseFS:
		return "filesystem"
	case PhaseNetwork:
		return "network"
	case PhasePCIe:
		return "pcie"
	case PhaseMemory:
		return "memory"
	case PhaseCompute:
		return "compute"
	case PhaseFixed:
		return "fixed"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one sequential step of a task program.
type Phase struct {
	// Name labels the phase in traces; defaults to the kind name.
	Name string
	// Kind selects the resource.
	Kind PhaseKind
	// Bytes is the data volume: total task bytes for External/FS phases,
	// per-node bytes for Network/PCIe/Memory phases.
	Bytes units.Bytes
	// Flops is the per-node floating-point work for Compute phases.
	Flops units.Flops
	// Seconds is the duration of Fixed phases.
	Seconds float64
	// Efficiency is the achieved fraction of peak in (0, 1]; zero means 1.
	// It calibrates node phases to measured data (e.g. BGW runs at ~42% of
	// the node compute peak at 64 nodes).
	Efficiency float64
	// Background starts the phase and immediately proceeds to the next one;
	// the task completes only when every background phase has finished.
	// This models compute/communication overlap within a task (e.g. MPI
	// exchange hidden behind GPU kernels).
	Background bool
}

// label returns the trace label.
func (p Phase) label() string {
	if p.Name != "" {
		return p.Name
	}
	return p.Kind.String()
}

// eff returns the efficiency with the zero default applied.
func (p Phase) eff() float64 {
	if p.Efficiency == 0 {
		return 1
	}
	return p.Efficiency
}

// validate checks the phase is well-formed.
func (p Phase) validate() error {
	if p.Efficiency < 0 || p.Efficiency > 1 {
		return fmt.Errorf("sim: phase %q efficiency %v outside (0,1]", p.label(), p.Efficiency)
	}
	switch p.Kind {
	case PhaseExternal, PhaseFS, PhaseNetwork, PhasePCIe, PhaseMemory:
		if p.Bytes < 0 || math.IsNaN(float64(p.Bytes)) || math.IsInf(float64(p.Bytes), 0) {
			return fmt.Errorf("sim: phase %q has invalid byte volume %v", p.label(), float64(p.Bytes))
		}
	case PhaseCompute:
		if p.Flops < 0 || math.IsNaN(float64(p.Flops)) || math.IsInf(float64(p.Flops), 0) {
			return fmt.Errorf("sim: phase %q has invalid flop count %v", p.label(), float64(p.Flops))
		}
	case PhaseFixed:
		if p.Seconds < 0 || math.IsNaN(p.Seconds) || math.IsInf(p.Seconds, 0) {
			return fmt.Errorf("sim: phase %q has invalid duration %v", p.label(), p.Seconds)
		}
	default:
		return fmt.Errorf("sim: phase %q has unknown kind %d", p.label(), int(p.Kind))
	}
	return nil
}

// Program is a task's sequential phase list.
type Program []Phase

// DefaultProgram derives a program from a task's characterized work vector:
// external staging, file-system load, PCIe transfer, memory traffic,
// network exchange, then compute. Unused components produce no phases.
func DefaultProgram(t *workflow.Task) Program {
	var p Program
	if t.Work.ExternalBytes > 0 {
		p = append(p, Phase{Kind: PhaseExternal, Bytes: t.Work.ExternalBytes})
	}
	if t.Work.FSBytes > 0 {
		p = append(p, Phase{Kind: PhaseFS, Bytes: t.Work.FSBytes})
	}
	if t.Work.PCIeBytes > 0 {
		p = append(p, Phase{Kind: PhasePCIe, Bytes: t.Work.PCIeBytes})
	}
	if t.Work.MemBytes > 0 {
		p = append(p, Phase{Kind: PhaseMemory, Bytes: t.Work.MemBytes})
	}
	if t.Work.NetworkBytes > 0 {
		p = append(p, Phase{Kind: PhaseNetwork, Bytes: t.Work.NetworkBytes})
	}
	if t.Work.Flops > 0 {
		p = append(p, Phase{Kind: PhaseCompute, Flops: t.Work.Flops})
	}
	return p
}

// Config tunes a simulation run.
type Config struct {
	// Machine is the system model (required).
	Machine *machine.Machine
	// AvailableNodes overrides the partition node count (0 keeps it).
	AvailableNodes int
	// ExternalBW overrides the machine external bandwidth (0 keeps it).
	ExternalBW units.ByteRate
	// ExternalPerFlowCap caps each task's external transfer rate (LCLS
	// observes ~1 GB/s per stream on good days); 0 means uncapped.
	ExternalPerFlowCap units.ByteRate
	// FSPerFlowCap caps each task's file-system rate; 0 means uncapped.
	FSPerFlowCap units.ByteRate
	// MaxEvents guards against scheduling loops (default 10 million).
	MaxEvents uint64
	// Failures enables fault injection (task failures with retry/backoff,
	// node MTBF outages). Nil — or a disabled model — simulates a
	// failure-free system, bit-identical to a run without the field.
	Failures *failure.Model
}

// TaskResult is one task's execution window.
type TaskResult struct {
	// Start and End are virtual seconds.
	Start, End float64
}

// Duration returns End - Start.
func (t TaskResult) Duration() float64 { return t.End - t.Start }

// Result is a completed simulation.
type Result struct {
	// Makespan is the end-to-end virtual time (first start to last end).
	Makespan float64
	// Throughput is total tasks divided by makespan.
	Throughput float64
	// Tasks maps task id to its window.
	Tasks map[string]TaskResult
	// Recorder holds all phase spans for breakdowns and Gantt charts.
	Recorder *trace.Recorder
	// PeakNodesInUse is the allocation high-water mark.
	PeakNodesInUse int
	// Attempts maps task id to how many attempts it took (1 = no failure).
	Attempts map[string]int
	// Retries counts failed attempts across the run.
	Retries int
	// RetrySeconds sums the time lost to failures per phase label — the
	// doomed attempts' phase time plus "restage" and "backoff" — answering
	// "which resource did the retries hammer".
	RetrySeconds map[string]float64
	// NodeFailures counts node outages injected by the fault process.
	NodeFailures int
}

// RetryTotalSeconds sums RetrySeconds across labels.
func (r *Result) RetryTotalSeconds() float64 {
	total := 0.0
	for _, v := range r.RetrySeconds {
		total += v
	}
	return total
}

// DominantRetryLabel returns the phase label with the most retry seconds
// (ties broken by name), or "none" when the run had no retries — the label
// the failure-ensemble histogram aggregates.
func (r *Result) DominantRetryLabel() string { return dominantRetryLabel(r.RetrySeconds) }

// dominantRetryLabel implements DominantRetryLabel over a raw retry-seconds
// map so the batch executor shares the exact selection rule. The result does
// not depend on map iteration order: the maximum value wins, ties go to the
// lexicographically smallest label.
func dominantRetryLabel(m map[string]float64) string {
	best, bestV := "none", 0.0
	for label, v := range m {
		if v > bestV || (v == bestV && v > 0 && label < best) {
			best, bestV = label, v
		}
	}
	return best
}

// Breakdown returns total seconds per phase label.
func (r *Result) Breakdown() map[string]float64 { return r.Recorder.ByPhase() }

// Run executes the workflow and returns the result. Tasks without an entry
// in programs run their DefaultProgram. Programs for unknown task ids are an
// error. Run is the one-shot path: it compiles a Plan and executes a single
// default trial. Callers running many trials of the same workflow (Monte
// Carlo ensembles, what-if sweeps) should Compile once and call Plan.Run per
// trial.
func Run(wf *workflow.Workflow, programs map[string]Program, cfg Config) (*Result, error) {
	p, err := Compile(wf, programs, cfg)
	if err != nil {
		return nil, err
	}
	return p.Run(Trial{})
}

// stagedBytes sums the program's external and file-system payload — the
// volume a failed task must re-stage before retrying.
func stagedBytes(p Program) float64 {
	total := 0.0
	for _, ph := range p {
		if ph.Kind == PhaseExternal || ph.Kind == PhaseFS {
			total += float64(ph.Bytes)
		}
	}
	return total
}
