// Package sim executes workflows on a modeled HPC system using discrete-
// event simulation. It is the substrate that replaces the paper's real runs
// on Perlmutter and Cori: tasks are phase programs (stage data externally,
// load from the file system, move bytes over PCIe/memory/network, compute,
// pay fixed control-flow overheads) executed against shared links with
// max-min fair contention and a finite node pool.
//
// The simulator produces the quantities the Workflow Roofline methodology
// consumes: the makespan, the achieved throughput, per-phase time breakdowns
// (Fig 5b, Fig 10b), and per-task spans for Gantt charts (Fig 7d).
package sim

import (
	"fmt"
	"math"

	"wroofline/internal/engine"
	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/resources"
	"wroofline/internal/trace"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// PhaseKind selects which resource a phase exercises.
type PhaseKind int

// Phase kinds.
const (
	// PhaseExternal moves Bytes (total for the task) over the shared
	// external/DTN link.
	PhaseExternal PhaseKind = iota
	// PhaseFS moves Bytes (total for the task) over the shared parallel
	// file system.
	PhaseFS
	// PhaseNetwork moves Bytes per node at the node NIC bandwidth.
	PhaseNetwork
	// PhasePCIe moves Bytes per node at the node PCIe bandwidth.
	PhasePCIe
	// PhaseMemory moves Bytes per node at the node memory bandwidth.
	PhaseMemory
	// PhaseCompute executes Flops per node at the node compute peak.
	PhaseCompute
	// PhaseFixed takes Seconds of wall time regardless of resources
	// (interpreter startup, bash, metadata handling).
	PhaseFixed
)

// String names the kind (also the default trace label).
func (k PhaseKind) String() string {
	switch k {
	case PhaseExternal:
		return "external"
	case PhaseFS:
		return "filesystem"
	case PhaseNetwork:
		return "network"
	case PhasePCIe:
		return "pcie"
	case PhaseMemory:
		return "memory"
	case PhaseCompute:
		return "compute"
	case PhaseFixed:
		return "fixed"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one sequential step of a task program.
type Phase struct {
	// Name labels the phase in traces; defaults to the kind name.
	Name string
	// Kind selects the resource.
	Kind PhaseKind
	// Bytes is the data volume: total task bytes for External/FS phases,
	// per-node bytes for Network/PCIe/Memory phases.
	Bytes units.Bytes
	// Flops is the per-node floating-point work for Compute phases.
	Flops units.Flops
	// Seconds is the duration of Fixed phases.
	Seconds float64
	// Efficiency is the achieved fraction of peak in (0, 1]; zero means 1.
	// It calibrates node phases to measured data (e.g. BGW runs at ~42% of
	// the node compute peak at 64 nodes).
	Efficiency float64
	// Background starts the phase and immediately proceeds to the next one;
	// the task completes only when every background phase has finished.
	// This models compute/communication overlap within a task (e.g. MPI
	// exchange hidden behind GPU kernels).
	Background bool
}

// label returns the trace label.
func (p Phase) label() string {
	if p.Name != "" {
		return p.Name
	}
	return p.Kind.String()
}

// eff returns the efficiency with the zero default applied.
func (p Phase) eff() float64 {
	if p.Efficiency == 0 {
		return 1
	}
	return p.Efficiency
}

// validate checks the phase is well-formed.
func (p Phase) validate() error {
	if p.Efficiency < 0 || p.Efficiency > 1 {
		return fmt.Errorf("sim: phase %q efficiency %v outside (0,1]", p.label(), p.Efficiency)
	}
	switch p.Kind {
	case PhaseExternal, PhaseFS, PhaseNetwork, PhasePCIe, PhaseMemory:
		if p.Bytes < 0 || math.IsNaN(float64(p.Bytes)) || math.IsInf(float64(p.Bytes), 0) {
			return fmt.Errorf("sim: phase %q has invalid byte volume %v", p.label(), float64(p.Bytes))
		}
	case PhaseCompute:
		if p.Flops < 0 || math.IsNaN(float64(p.Flops)) || math.IsInf(float64(p.Flops), 0) {
			return fmt.Errorf("sim: phase %q has invalid flop count %v", p.label(), float64(p.Flops))
		}
	case PhaseFixed:
		if p.Seconds < 0 || math.IsNaN(p.Seconds) || math.IsInf(p.Seconds, 0) {
			return fmt.Errorf("sim: phase %q has invalid duration %v", p.label(), p.Seconds)
		}
	default:
		return fmt.Errorf("sim: phase %q has unknown kind %d", p.label(), int(p.Kind))
	}
	return nil
}

// Program is a task's sequential phase list.
type Program []Phase

// DefaultProgram derives a program from a task's characterized work vector:
// external staging, file-system load, PCIe transfer, memory traffic,
// network exchange, then compute. Unused components produce no phases.
func DefaultProgram(t *workflow.Task) Program {
	var p Program
	if t.Work.ExternalBytes > 0 {
		p = append(p, Phase{Kind: PhaseExternal, Bytes: t.Work.ExternalBytes})
	}
	if t.Work.FSBytes > 0 {
		p = append(p, Phase{Kind: PhaseFS, Bytes: t.Work.FSBytes})
	}
	if t.Work.PCIeBytes > 0 {
		p = append(p, Phase{Kind: PhasePCIe, Bytes: t.Work.PCIeBytes})
	}
	if t.Work.MemBytes > 0 {
		p = append(p, Phase{Kind: PhaseMemory, Bytes: t.Work.MemBytes})
	}
	if t.Work.NetworkBytes > 0 {
		p = append(p, Phase{Kind: PhaseNetwork, Bytes: t.Work.NetworkBytes})
	}
	if t.Work.Flops > 0 {
		p = append(p, Phase{Kind: PhaseCompute, Flops: t.Work.Flops})
	}
	return p
}

// Config tunes a simulation run.
type Config struct {
	// Machine is the system model (required).
	Machine *machine.Machine
	// AvailableNodes overrides the partition node count (0 keeps it).
	AvailableNodes int
	// ExternalBW overrides the machine external bandwidth (0 keeps it).
	ExternalBW units.ByteRate
	// ExternalPerFlowCap caps each task's external transfer rate (LCLS
	// observes ~1 GB/s per stream on good days); 0 means uncapped.
	ExternalPerFlowCap units.ByteRate
	// FSPerFlowCap caps each task's file-system rate; 0 means uncapped.
	FSPerFlowCap units.ByteRate
	// MaxEvents guards against scheduling loops (default 10 million).
	MaxEvents uint64
	// Failures enables fault injection (task failures with retry/backoff,
	// node MTBF outages). Nil — or a disabled model — simulates a
	// failure-free system, bit-identical to a run without the field.
	Failures *failure.Model
}

// TaskResult is one task's execution window.
type TaskResult struct {
	// Start and End are virtual seconds.
	Start, End float64
}

// Duration returns End - Start.
func (t TaskResult) Duration() float64 { return t.End - t.Start }

// Result is a completed simulation.
type Result struct {
	// Makespan is the end-to-end virtual time (first start to last end).
	Makespan float64
	// Throughput is total tasks divided by makespan.
	Throughput float64
	// Tasks maps task id to its window.
	Tasks map[string]TaskResult
	// Recorder holds all phase spans for breakdowns and Gantt charts.
	Recorder *trace.Recorder
	// PeakNodesInUse is the allocation high-water mark.
	PeakNodesInUse int
	// Attempts maps task id to how many attempts it took (1 = no failure).
	Attempts map[string]int
	// Retries counts failed attempts across the run.
	Retries int
	// RetrySeconds sums the time lost to failures per phase label — the
	// doomed attempts' phase time plus "restage" and "backoff" — answering
	// "which resource did the retries hammer".
	RetrySeconds map[string]float64
	// NodeFailures counts node outages injected by the fault process.
	NodeFailures int
}

// RetryTotalSeconds sums RetrySeconds across labels.
func (r *Result) RetryTotalSeconds() float64 {
	total := 0.0
	for _, v := range r.RetrySeconds {
		total += v
	}
	return total
}

// DominantRetryLabel returns the phase label with the most retry seconds
// (ties broken by name), or "none" when the run had no retries — the label
// the failure-ensemble histogram aggregates.
func (r *Result) DominantRetryLabel() string {
	best, bestV := "none", 0.0
	for label, v := range r.RetrySeconds {
		if v > bestV || (v == bestV && v > 0 && label < best) {
			best, bestV = label, v
		}
	}
	return best
}

// Breakdown returns total seconds per phase label.
func (r *Result) Breakdown() map[string]float64 { return r.Recorder.ByPhase() }

// run holds the per-execution state.
type run struct {
	eng      *engine.Engine
	pool     *resources.Pool
	external *resources.Link // nil when unused
	fs       *resources.Link // nil when unused
	part     *machine.Partition
	rec      *trace.Recorder
	programs map[string]Program
	wf       *workflow.Workflow

	remainingDeps map[string]int
	result        map[string]TaskResult
	states        map[string]*taskState
	failure       error

	// fm is the fault model (nil when disabled); faults drives node outages.
	fm           *failure.Model
	faults       *nodeFaults
	retries      int
	retrySeconds map[string]float64
}

// fail records the first error; the engine keeps draining but the run
// reports the failure. The node-fault process stops so the drain is finite.
func (r *run) fail(err error) {
	if r.failure == nil {
		r.failure = err
	}
	if r.faults != nil {
		r.faults.stop()
	}
}

// Run executes the workflow and returns the result. Tasks without an entry
// in programs run their DefaultProgram. Programs for unknown task ids are an
// error.
func Run(wf *workflow.Workflow, programs map[string]Program, cfg Config) (*Result, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("sim: nil machine")
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	part, err := cfg.Machine.Partition(wf.Partition)
	if err != nil {
		return nil, err
	}
	for id := range programs {
		if _, err := wf.Task(id); err != nil {
			return nil, fmt.Errorf("sim: program for unknown task %q", id)
		}
	}

	nodes := part.Nodes
	if cfg.AvailableNodes > 0 {
		nodes = cfg.AvailableNodes
	}
	if req := wf.MaxTaskNodes(); req > nodes {
		return nil, fmt.Errorf("sim: workflow %s needs %d nodes per task but only %d are available",
			wf.Name, req, nodes)
	}

	eng := engine.New()
	eng.MaxEvents = cfg.MaxEvents
	if eng.MaxEvents == 0 {
		eng.MaxEvents = 10_000_000
	}
	pool, err := resources.NewPool(eng, part.Name, nodes)
	if err != nil {
		return nil, err
	}

	r := &run{
		eng:           eng,
		pool:          pool,
		part:          part,
		rec:           trace.NewRecorder(),
		programs:      make(map[string]Program, wf.TotalTasks()),
		wf:            wf,
		remainingDeps: make(map[string]int, wf.TotalTasks()),
		result:        make(map[string]TaskResult, wf.TotalTasks()),
		states:        make(map[string]*taskState, wf.TotalTasks()),
	}
	if cfg.Failures.Enabled() {
		r.fm = cfg.Failures
		r.retrySeconds = make(map[string]float64)
		if r.fm.Retry.MaxAttempts <= 0 {
			return nil, fmt.Errorf("sim: failure model needs positive max attempts, got %d", r.fm.Retry.MaxAttempts)
		}
		if r.fm.NodeMTBF > 0 {
			r.faults = newNodeFaults(r, nodes, wf.MaxTaskNodes())
		}
	}

	// Resolve programs and validate them up front.
	needExternal, needFS := false, false
	for _, t := range wf.Tasks() {
		prog, ok := programs[t.ID]
		if !ok {
			prog = DefaultProgram(t)
		}
		for _, ph := range prog {
			if err := ph.validate(); err != nil {
				return nil, fmt.Errorf("sim: task %q: %w", t.ID, err)
			}
			switch ph.Kind {
			case PhaseExternal:
				if ph.Bytes > 0 {
					needExternal = true
				}
			case PhaseFS:
				if ph.Bytes > 0 {
					needFS = true
				}
			}
		}
		r.programs[t.ID] = prog
	}

	if needExternal {
		ext := cfg.Machine.ExternalBW
		if cfg.ExternalBW > 0 {
			ext = cfg.ExternalBW
		}
		if ext <= 0 {
			return nil, fmt.Errorf("sim: workflow %s stages external data but no external bandwidth is configured", wf.Name)
		}
		l, err := resources.NewLink(eng, "external", float64(ext), float64(cfg.ExternalPerFlowCap))
		if err != nil {
			return nil, err
		}
		r.external = l
	}
	if needFS {
		fsBW, err := cfg.Machine.FSBandwidth(wf.Partition)
		if err != nil {
			return nil, err
		}
		l, err := resources.NewLink(eng, "filesystem", float64(fsBW), float64(cfg.FSPerFlowCap))
		if err != nil {
			return nil, err
		}
		r.fs = l
	}

	// Dependency counting; sources submit immediately.
	g := wf.Graph()
	for _, t := range wf.Tasks() {
		r.remainingDeps[t.ID] = len(g.Preds(t.ID))
	}
	if r.faults != nil {
		r.faults.arm()
	}
	for _, t := range wf.Tasks() {
		if r.remainingDeps[t.ID] == 0 {
			r.submit(t.ID)
		}
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if r.failure != nil {
		return nil, r.failure
	}
	if len(r.result) != wf.TotalTasks() {
		return nil, fmt.Errorf("sim: only %d of %d tasks completed (dependency deadlock?)",
			len(r.result), wf.TotalTasks())
	}

	mk := r.rec.Makespan()
	res := &Result{
		Makespan:       mk,
		Tasks:          r.result,
		Recorder:       r.rec,
		PeakNodesInUse: pool.PeakInUse(),
	}
	if mk > 0 {
		res.Throughput = float64(wf.TotalTasks()) / mk
	}
	if r.fm != nil {
		res.Attempts = make(map[string]int, len(r.states))
		for id, st := range r.states {
			res.Attempts[id] = st.attempt
		}
		res.Retries = r.retries
		res.RetrySeconds = r.retrySeconds
		if r.faults != nil {
			res.NodeFailures = r.faults.failures
		}
	}
	return res, nil
}

// submit queues the task for node allocation.
func (r *run) submit(id string) {
	task, err := r.wf.Task(id)
	if err != nil {
		r.fail(err)
		return
	}
	if err := r.pool.Acquire(task.Nodes, func() {
		r.startAttempt(task)
	}); err != nil {
		r.fail(err)
	}
}

// taskState tracks a task's in-flight background phases and whether the
// foreground chain has finished, plus the failure-model bookkeeping
// (attempt counts, checkpoint progress, the task's fault stream). Without a
// fault model only background/chainDone ever change.
type taskState struct {
	background int
	chainDone  bool

	// attempt counts attempts so far (1 on the first run).
	attempt int
	// remaining is the fraction of nominal work still to do (1 initially;
	// shrinks only under checkpointed retries).
	remaining float64
	// doomed marks the current attempt as failing at fraction frac of its
	// planned work, both drawn from stream at attempt start.
	doomed bool
	frac   float64
	// firstStart is the first attempt's start time — the task window origin.
	firstStart float64
	stream     *failure.Stream
}

// startAttempt begins the next attempt of a task that holds its nodes. With
// no fault model this is exactly the pre-failure execution path: one
// attempt, the unmodified program.
func (r *run) startAttempt(task *workflow.Task) {
	start := r.eng.Now()
	st := r.states[task.ID]
	if st == nil {
		st = &taskState{remaining: 1, firstStart: start}
		r.states[task.ID] = st
		if r.fm != nil && r.fm.TaskFailProb > 0 {
			st.stream = failure.TaskStream(r.fm.Seed, task.ID)
		}
	}
	st.attempt++
	st.background = 0
	st.chainDone = false
	st.doomed = false
	if st.stream != nil {
		if st.stream.Float64() < r.fm.TaskFailProb {
			st.doomed = true
			st.frac = st.stream.Float64()
		}
	}
	prog := r.programs[task.ID]
	if r.fm != nil {
		// planned = work this attempt would do if it succeeded: the remaining
		// fraction, plus the checkpoint-restart overhead of re-processing
		// completed work. A doomed attempt stops at frac of its plan.
		planned := st.remaining
		if r.fm.Retry.Checkpoint && st.attempt > 1 {
			planned += r.fm.Retry.CheckpointOverhead * (1 - st.remaining)
		}
		factor := planned
		if st.doomed {
			factor *= st.frac
		}
		if factor != 1 {
			prog = scaleProgram(prog, factor)
		}
	}
	r.execPhases(task, prog, 0, start)
}

// scaleProgram returns a copy of the program with every phase's work scaled
// by factor — the partial execution of a failed or checkpoint-resumed
// attempt.
func scaleProgram(p Program, factor float64) Program {
	out := make(Program, len(p))
	for i, ph := range p {
		ph.Bytes = units.Bytes(float64(ph.Bytes) * factor)
		ph.Flops = units.Flops(float64(ph.Flops) * factor)
		ph.Seconds *= factor
		out[i] = ph
	}
	return out
}

// stagedBytes sums the program's external and file-system payload — the
// volume a failed task must re-stage before retrying.
func stagedBytes(p Program) float64 {
	total := 0.0
	for _, ph := range p {
		if ph.Kind == PhaseExternal || ph.Kind == PhaseFS {
			total += float64(ph.Bytes)
		}
	}
	return total
}

// execPhases runs program[idx:] for the task, then completes it once the
// foreground chain and every background phase are done.
func (r *run) execPhases(task *workflow.Task, prog Program, idx int, taskStart float64) {
	st := r.states[task.ID]
	if idx >= len(prog) {
		st.chainDone = true
		r.maybeComplete(task, taskStart)
		return
	}
	ph := prog[idx]
	begin := r.eng.Now()
	record := func() bool {
		if err := r.rec.Record(trace.Span{
			Task: task.ID, Phase: ph.label(), Start: begin, End: r.eng.Now(),
		}); err != nil {
			r.fail(err)
			return false
		}
		if st.doomed {
			// The whole attempt is wasted work; charge it to the phase label.
			r.retrySeconds[ph.label()] += r.eng.Now() - begin
		}
		return true
	}

	var done func()
	if ph.Background {
		st.background++
		done = func() {
			if !record() {
				return
			}
			st.background--
			r.maybeComplete(task, taskStart)
		}
	} else {
		done = func() {
			if !record() {
				return
			}
			r.execPhases(task, prog, idx+1, taskStart)
		}
	}

	start := func() {
		switch ph.Kind {
		case PhaseExternal:
			r.transfer(r.external, ph, done)
		case PhaseFS:
			r.transfer(r.fs, ph, done)
		default:
			d, err := r.nodePhaseSeconds(task, ph)
			if err != nil {
				r.fail(err)
				return
			}
			if _, err := r.eng.Schedule(d, done); err != nil {
				r.fail(err)
			}
		}
	}
	start()
	if ph.Background {
		// The foreground chain continues immediately.
		r.execPhases(task, prog, idx+1, taskStart)
	}
}

// maybeComplete finishes the attempt once nothing is outstanding: a doomed
// attempt re-enters the queue after restage + backoff, a clean one completes
// the task.
func (r *run) maybeComplete(task *workflow.Task, taskStart float64) {
	st := r.states[task.ID]
	if !st.chainDone || st.background != 0 {
		return
	}
	if st.doomed {
		r.failAttempt(task, st)
		return
	}
	r.complete(task, st.firstStart)
}

// failAttempt handles a failed attempt: release the nodes, pay the
// payload-dependent restage cost and the policy backoff, then re-enter the
// allocation queue — or give up once attempts are exhausted.
func (r *run) failAttempt(task *workflow.Task, st *taskState) {
	r.retries++
	if r.fm.Retry.Checkpoint {
		st.remaining *= 1 - st.frac
	}
	if err := r.pool.Release(task.Nodes); err != nil {
		r.fail(err)
		return
	}
	if st.attempt >= r.fm.Retry.MaxAttempts {
		r.fail(fmt.Errorf("sim: task %q failed permanently after %d attempts", task.ID, st.attempt))
		return
	}
	now := r.eng.Now()
	restage := 0.0
	if r.fm.RestageBytesPerSec > 0 {
		if b := stagedBytes(r.programs[task.ID]); b > 0 {
			restage = b / r.fm.RestageBytesPerSec
		}
	}
	var u float64
	if r.fm.Retry.JitterFrac > 0 {
		u = st.stream.Float64()
	}
	backoff := r.fm.Retry.Delay(st.attempt, u)
	if restage > 0 {
		if err := r.rec.Record(trace.Span{Task: task.ID, Phase: "restage", Start: now, End: now + restage}); err != nil {
			r.fail(err)
			return
		}
		r.retrySeconds["restage"] += restage
	}
	if backoff > 0 {
		if err := r.rec.Record(trace.Span{Task: task.ID, Phase: "backoff", Start: now + restage, End: now + restage + backoff}); err != nil {
			r.fail(err)
			return
		}
		r.retrySeconds["backoff"] += backoff
	}
	if _, err := r.eng.Schedule(restage+backoff, func() {
		if err := r.pool.Acquire(task.Nodes, func() { r.startAttempt(task) }); err != nil {
			r.fail(err)
		}
	}); err != nil {
		r.fail(err)
	}
}

// transfer moves the phase bytes over a shared link, scaled by efficiency
// (an 0.5-efficient transfer moves bytes/0.5 effective volume).
func (r *run) transfer(link *resources.Link, ph Phase, done func()) {
	if link == nil {
		// Zero-byte phases on an absent link complete immediately.
		if ph.Bytes == 0 {
			done()
			return
		}
		r.fail(fmt.Errorf("sim: phase %q needs a link that was not configured", ph.label()))
		return
	}
	effective := float64(ph.Bytes) / ph.eff()
	if err := link.Transfer(effective, func(_, _ float64) { done() }); err != nil {
		r.fail(err)
	}
}

// nodePhaseSeconds computes a node-local phase duration from the machine
// peaks and the phase efficiency.
func (r *run) nodePhaseSeconds(task *workflow.Task, ph Phase) (float64, error) {
	var peakTime float64
	switch ph.Kind {
	case PhaseNetwork:
		peakTime = units.TimeToMove(ph.Bytes, r.part.NodeNICBW)
	case PhasePCIe:
		peakTime = units.TimeToMove(ph.Bytes, r.part.NodePCIeBW)
	case PhaseMemory:
		peakTime = units.TimeToMove(ph.Bytes, r.part.NodeMemBW)
	case PhaseCompute:
		peakTime = units.TimeToCompute(ph.Flops, r.part.NodeFlops)
	case PhaseFixed:
		return ph.Seconds, nil
	default:
		return 0, fmt.Errorf("sim: task %q: unexpected node phase kind %v", task.ID, ph.Kind)
	}
	if math.IsInf(peakTime, 1) {
		return 0, fmt.Errorf("sim: task %q phase %q uses a resource with zero peak on partition %q",
			task.ID, ph.label(), r.part.Name)
	}
	return peakTime / ph.eff(), nil
}

// complete releases nodes, records the window, and unblocks successors.
func (r *run) complete(task *workflow.Task, taskStart float64) {
	end := r.eng.Now()
	r.result[task.ID] = TaskResult{Start: taskStart, End: end}
	// A task with an empty program still leaves a marker span so makespan
	// and Gantt output include it.
	if len(r.programs[task.ID]) == 0 {
		if err := r.rec.Record(trace.Span{Task: task.ID, Phase: "noop", Start: taskStart, End: end}); err != nil {
			r.fail(err)
			return
		}
	}
	if err := r.pool.Release(task.Nodes); err != nil {
		r.fail(err)
		return
	}
	if r.faults != nil && len(r.result) == r.wf.TotalTasks() {
		// The workflow is done; stop injecting outages so the engine drains.
		r.faults.stop()
	}
	for _, succ := range r.wf.Graph().Succs(task.ID) {
		r.remainingDeps[succ]--
		if r.remainingDeps[succ] == 0 {
			r.submit(succ)
		}
	}
}

// nodeFaults is the node-outage process: exponential interarrivals with
// aggregate mean MTBF/nodes take one node out of service at a time;
// repairs return it after the repair time. The process never takes the
// pool below the widest task's requirement, so capacity loss slows the
// workflow without wedging it.
type nodeFaults struct {
	r        *run
	stream   *failure.Stream
	mean     float64 // aggregate interarrival mean (MTBF / nominal nodes)
	repair   float64
	maxDown  int
	down     int
	failures int
	stopped  bool
	next     *engine.Event
	repairs  map[*engine.Event]struct{}
}

// newNodeFaults builds the process (armed separately, before task submission).
func newNodeFaults(r *run, nodes, maxTaskNodes int) *nodeFaults {
	return &nodeFaults{
		r:       r,
		stream:  failure.NodeStream(r.fm.Seed),
		mean:    r.fm.NodeMTBF / float64(nodes),
		repair:  r.fm.NodeRepair,
		maxDown: nodes - maxTaskNodes,
		repairs: make(map[*engine.Event]struct{}),
	}
}

// arm schedules the next outage.
func (nf *nodeFaults) arm() {
	if nf.stopped {
		return
	}
	ev, err := nf.r.eng.Schedule(nf.stream.Exp(nf.mean), nf.fire)
	if err != nil {
		nf.r.fail(err)
		return
	}
	nf.next = ev
}

// fire takes one node down (when the cap allows), schedules its repair, and
// re-arms.
func (nf *nodeFaults) fire() {
	nf.next = nil
	if nf.stopped {
		return
	}
	if nf.down < nf.maxDown {
		if err := nf.r.pool.Offline(1); err != nil {
			nf.r.fail(err)
			return
		}
		nf.down++
		nf.failures++
		var rev *engine.Event
		rev, err := nf.r.eng.Schedule(nf.repair, func() {
			delete(nf.repairs, rev)
			nf.down--
			if err := nf.r.pool.Online(1); err != nil {
				nf.r.fail(err)
			}
		})
		if err != nil {
			nf.r.fail(err)
			return
		}
		nf.repairs[rev] = struct{}{}
	}
	nf.arm()
}

// stop cancels every pending outage and repair so the engine can drain.
func (nf *nodeFaults) stop() {
	if nf.stopped {
		return
	}
	nf.stopped = true
	if nf.next != nil {
		nf.next.Cancel()
		nf.next = nil
	}
	for ev := range nf.repairs {
		ev.Cancel()
	}
	nf.repairs = nil
}
