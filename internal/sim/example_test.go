package sim_test

import (
	"fmt"

	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// Example simulates two tasks sharing the Perlmutter file system: fair-share
// contention doubles the load time.
func Example() {
	w := workflow.New("demo", machine.PartGPU)
	for _, id := range []string{"a", "b"} {
		if err := w.AddTask(&workflow.Task{
			ID: id, Nodes: 1,
			Work: workflow.Work{FSBytes: 5.6 * units.TB},
		}); err != nil {
			fmt.Println(err)
			return
		}
	}
	res, err := sim.Run(w, nil, sim.Config{Machine: machine.Perlmutter()})
	if err != nil {
		fmt.Println(err)
		return
	}
	// One task alone would take 1 s; two contending tasks share 5.6 TB/s.
	fmt.Printf("makespan: %.0f s\n", res.Makespan)
	// Output:
	// makespan: 2 s
}

// Example_background overlaps an MPI exchange behind compute.
func Example_background() {
	w := workflow.New("overlap", machine.PartGPU)
	if err := w.AddTask(&workflow.Task{ID: "t", Nodes: 1}); err != nil {
		fmt.Println(err)
		return
	}
	res, err := sim.Run(w, map[string]sim.Program{
		"t": {
			{Kind: sim.PhaseNetwork, Bytes: 400 * units.GB, Background: true}, // 4 s
			{Kind: sim.PhaseCompute, Flops: 6 * 38.8 * units.TFLOP},           // 6 s
		},
	}, sim.Config{Machine: machine.Perlmutter()})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("makespan: %.0f s\n", res.Makespan)
	// Output:
	// makespan: 6 s
}
