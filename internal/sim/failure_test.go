package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/workflow"
)

// compileFailure builds a model for tests, failing the test on spec errors.
func compileFailure(t *testing.T, spec *failure.Spec) *failure.Model {
	t.Helper()
	m, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// chainWorkflow builds a width-wide, depth-deep layered workflow of
// fixed-duration tasks.
func chainWorkflow(t *testing.T, width, depth int, secs float64) (*workflow.Workflow, map[string]Program) {
	t.Helper()
	w := workflow.New("layers", machine.PartCPU)
	progs := make(map[string]Program)
	for d := 0; d < depth; d++ {
		for i := 0; i < width; i++ {
			id := fmt.Sprintf("t%d_%d", d, i)
			if err := w.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
				t.Fatal(err)
			}
			progs[id] = Program{{Kind: PhaseFixed, Seconds: secs, Name: "work"}}
			if d > 0 {
				if err := w.AddDep(fmt.Sprintf("t%d_%d", d-1, i), id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return w, progs
}

func TestZeroFailureConfigIsByteIdentical(t *testing.T) {
	// A present-but-disabled failure model must not perturb the simulation:
	// same makespan, same spans, same result maps, no retry bookkeeping
	// beyond the attempt counts.
	w, progs := chainWorkflow(t, 4, 3, 10)
	base, err := Run(w, progs, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	disabled := compileFailure(t, &failure.Spec{}) // compiles but Enabled() == false
	got, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: disabled})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != base.Makespan || got.Throughput != base.Throughput {
		t.Errorf("disabled model drifted: makespan %v vs %v", got.Makespan, base.Makespan)
	}
	if !reflect.DeepEqual(got.Tasks, base.Tasks) {
		t.Errorf("task windows drifted")
	}
	if !reflect.DeepEqual(got.Recorder.Spans(), base.Recorder.Spans()) {
		t.Errorf("spans drifted")
	}
	if got.Retries != 0 || got.Attempts != nil || got.RetrySeconds != nil {
		t.Errorf("disabled model left retry bookkeeping: %+v", got)
	}
}

func TestTaskFailureRetriesAndExtendsMakespan(t *testing.T) {
	w, progs := chainWorkflow(t, 2, 1, 10)
	fm := compileFailure(t, &failure.Spec{
		TaskFailProb: 0.5, Seed: 1,
		Retry: &failure.RetrySpec{MaxAttempts: 20, BackoffSeconds: 3, BackoffFactor: 1},
	})
	res, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: fm})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(w, progs, Config{Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("50% failure probability produced no retries")
	}
	if res.Makespan <= base.Makespan {
		t.Errorf("failures should extend makespan: %v <= %v", res.Makespan, base.Makespan)
	}
	// Every retry pays the 3 s backoff and re-runs wasted "work" time.
	if res.RetrySeconds["backoff"] != float64(res.Retries)*3 {
		t.Errorf("backoff seconds = %v for %d retries", res.RetrySeconds["backoff"], res.Retries)
	}
	if res.RetrySeconds["work"] <= 0 {
		t.Errorf("doomed attempts recorded no wasted work: %v", res.RetrySeconds)
	}
	total := 0
	for id, n := range res.Attempts {
		if n < 1 {
			t.Errorf("task %s has %d attempts", id, n)
		}
		total += n - 1
	}
	if total != res.Retries {
		t.Errorf("attempt counts (%d extra) disagree with Retries (%d)", total, res.Retries)
	}
	if res.DominantRetryLabel() == "none" {
		t.Errorf("dominant retry label missing with %d retries", res.Retries)
	}
}

func TestFailureDeterministicPerSeed(t *testing.T) {
	w, progs := chainWorkflow(t, 3, 2, 5)
	spec := &failure.Spec{
		TaskFailProb: 0.3, Seed: 7, RestageRate: "1 GB/s",
		Retry: &failure.RetrySpec{MaxAttempts: 50, JitterFrac: 0.5},
	}
	run1, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: compileFailure(t, spec)})
	if err != nil {
		t.Fatal(err)
	}
	run2, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: compileFailure(t, spec)})
	if err != nil {
		t.Fatal(err)
	}
	if run1.Makespan != run2.Makespan || run1.Retries != run2.Retries {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d",
			run1.Makespan, run1.Retries, run2.Makespan, run2.Retries)
	}
	if !reflect.DeepEqual(run1.Recorder.Spans(), run2.Recorder.Spans()) {
		t.Fatal("same seed produced different span sets")
	}
	// A different seed draws a different fault sequence (with 6 tasks at 30%
	// the sequences essentially cannot coincide exactly).
	spec.Seed = 8
	run3, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: compileFailure(t, spec)})
	if err != nil {
		t.Fatal(err)
	}
	if run3.Makespan == run1.Makespan && run3.Retries == run1.Retries {
		t.Logf("warning: seeds 7 and 8 coincided (makespan %v, retries %d)", run3.Makespan, run3.Retries)
	}
}

func TestPermanentFailureAfterMaxAttempts(t *testing.T) {
	w, progs := chainWorkflow(t, 1, 1, 1)
	fm := compileFailure(t, &failure.Spec{TaskFailProb: 0.999, Seed: 1,
		Retry: &failure.RetrySpec{MaxAttempts: 3, BackoffSeconds: 0.01}})
	_, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: fm})
	if err == nil || !strings.Contains(err.Error(), "failed permanently after 3 attempts") {
		t.Fatalf("want permanent-failure error, got %v", err)
	}
}

func TestCheckpointReducesRetryCost(t *testing.T) {
	// With checkpointing, retries resume from completed work, so the total
	// wasted time is strictly below the full-rerun policy for the same
	// fault sequence.
	w, progs := chainWorkflow(t, 4, 2, 20)
	spec := func(ckpt bool) *failure.Spec {
		return &failure.Spec{
			TaskFailProb: 0.4, Seed: 5,
			Retry: &failure.RetrySpec{MaxAttempts: 50, BackoffSeconds: 0.001,
				Checkpoint: ckpt, CheckpointOverhead: 0.05},
		}
	}
	full, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: compileFailure(t, spec(false))})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: compileFailure(t, spec(true))})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same per-task streams: identical fault draws, so retry
	// counts match and only the redone work differs.
	if full.Retries != ckpt.Retries {
		t.Fatalf("fault sequences diverged: %d vs %d retries", full.Retries, ckpt.Retries)
	}
	if full.Retries == 0 {
		t.Fatal("fault sequence produced no retries")
	}
	if ckpt.Makespan >= full.Makespan {
		t.Errorf("checkpointing should shorten the run: %v >= %v", ckpt.Makespan, full.Makespan)
	}
	if ckpt.RetrySeconds["work"] >= full.RetrySeconds["work"] {
		t.Errorf("checkpointing should waste less work: %v >= %v",
			ckpt.RetrySeconds["work"], full.RetrySeconds["work"])
	}
}

func TestRestageCostScalesWithPayload(t *testing.T) {
	w := workflow.New("staged", machine.PartCPU)
	if err := w.AddTask(&workflow.Task{ID: "t", Nodes: 1}); err != nil {
		t.Fatal(err)
	}
	progs := map[string]Program{"t": {
		{Kind: PhaseExternal, Bytes: 2e9, Name: "stage"},
		{Kind: PhaseFixed, Seconds: 1, Name: "work"},
	}}
	fm := compileFailure(t, &failure.Spec{TaskFailProb: 0.5, Seed: 2, RestageRate: "1 GB/s",
		Retry: &failure.RetrySpec{MaxAttempts: 100, BackoffSeconds: 0.001}})
	res, err := Run(w, progs, Config{Machine: machine.Perlmutter(), Failures: fm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("seed 2 is known to doom the first attempt of task t")
	}
	// Each retry re-stages the 2 GB payload at 1 GB/s.
	want := float64(res.Retries) * 2
	if res.RetrySeconds["restage"] != want {
		t.Errorf("restage seconds = %v, want %v for %d retries",
			res.RetrySeconds["restage"], want, res.Retries)
	}
}

func TestNodeFailuresSlowTheRun(t *testing.T) {
	// 8 single-node tasks on a tiny 2-node partition; frequent outages with
	// slow repairs serialize the run.
	w := workflow.New("outages", machine.PartCPU)
	progs := make(map[string]Program)
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("t%d", i)
		if err := w.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
			t.Fatal(err)
		}
		progs[id] = Program{{Kind: PhaseFixed, Seconds: 10, Name: "work"}}
	}
	cfg := Config{Machine: machine.Perlmutter(), AvailableNodes: 2}
	base, err := Run(w, progs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Failures = compileFailure(t, &failure.Spec{
		NodeMTBFSeconds: 20, NodeRepairSeconds: 15, Seed: 9,
	})
	res, err := Run(w, progs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeFailures == 0 {
		t.Fatal("MTBF of 20 s per 2 nodes over a 40+ s run produced no outages")
	}
	if res.Makespan <= base.Makespan {
		t.Errorf("outages should slow the run: %v <= %v", res.Makespan, base.Makespan)
	}
	if res.Retries != 0 {
		t.Errorf("pure node outages should not retry tasks, got %d", res.Retries)
	}
	// Determinism under node faults too.
	res2, err := Run(w, progs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan != res.Makespan || res2.NodeFailures != res.NodeFailures {
		t.Errorf("node-fault runs diverged: %v/%d vs %v/%d",
			res.Makespan, res.NodeFailures, res2.Makespan, res2.NodeFailures)
	}
}

func TestNodeFaultsNeverWedgeWideTasks(t *testing.T) {
	// A task needing every node must still run: the fault process caps
	// concurrent outages at nodes - MaxTaskNodes (here zero — no outages).
	w := workflow.New("wide", machine.PartCPU)
	if err := w.AddTask(&workflow.Task{ID: "t", Nodes: 4}); err != nil {
		t.Fatal(err)
	}
	progs := map[string]Program{"t": {{Kind: PhaseFixed, Seconds: 100, Name: "work"}}}
	cfg := Config{Machine: machine.Perlmutter(), AvailableNodes: 4,
		Failures: compileFailure(t, &failure.Spec{NodeMTBFSeconds: 1, NodeRepairSeconds: 1e6, Seed: 2})}
	res, err := Run(w, progs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 100 {
		t.Errorf("makespan = %v, want 100", res.Makespan)
	}
	if res.NodeFailures != 0 {
		t.Errorf("outage cap violated: %d failures", res.NodeFailures)
	}
}
