package sim

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/sweep"
	"wroofline/internal/units"
	"wroofline/internal/wfgen"
	"wroofline/internal/workflow"
)

// The batch-executor differential wall: RunBatch and RunScalar must produce
// results byte-identical to per-trial Plan.Run across randomized plans
// drawn from every wfgen topology family, flat/NUMA/bisection machines, and
// failure configurations — including the analytic fast path, trial
// memoization, and every batch/worker geometry.

// diffCase is the raw material testing/quick mutates; diffPlan interprets
// it into a compiled plan plus a trial set.
type diffCase struct {
	FamIdx  uint8
	MachIdx uint8
	Width   uint8
	Depth   uint8
	Seed    uint64
	CV      uint8
	Payload bool
	NoFS    bool
	Avail   uint8 // 0 = full partition, else a small pool that forces queueing
	Fail    uint8 // failure mix selector per trial block
	Trials  uint8
}

var diffMachines = []string{"perlmutter", "perlmutter-numa", "ridgeline"}

// spec renders the wfgen spec for the case.
func (c diffCase) spec() *wfgen.Spec {
	s := &wfgen.Spec{
		Family: wfgen.Families()[int(c.FamIdx)%len(wfgen.Families())],
		Seed:   c.Seed,
		Width:  1 + int(c.Width)%5,
		Depth:  1 + int(c.Depth)%4,
		CV:     float64(c.CV%5) / 10,
	}
	if s.Family == "montage" && s.Width < 2 {
		s.Width = 2
	}
	if c.Payload {
		s.Payload = "64 MB"
	}
	if c.NoFS {
		s.FS = "0"
		s.Payload = "0"
	}
	return s
}

// compile builds the plan for the case (skipping impossible geometries).
func (c diffCase) compile(t testing.TB) *Plan {
	t.Helper()
	m, err := machine.ByName(diffMachines[int(c.MachIdx)%len(diffMachines)])
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	wf, err := wfgen.Generate(c.spec())
	if err != nil {
		t.Fatalf("generate %+v: %v", c, err)
	}
	cfg := Config{Machine: m}
	if c.Avail%4 != 0 {
		// A pool narrower than the workflow forces allocation queueing (and
		// disqualifies the analytic path); keep it at least 2 wide so node
		// faults have headroom.
		cfg.AvailableNodes = 2 + int(c.Avail)%3
	}
	p, err := Compile(wf, nil, cfg)
	if err != nil {
		t.Fatalf("compile %+v: %v", c, err)
	}
	return p
}

// trials builds the case's trial set: failure-free trials first (so the
// memo and analytic paths get coverage), then per-trial seeded failure
// models of increasing severity.
func (c diffCase) trials() []Trial {
	n := 1 + int(c.Trials)%5
	out := make([]Trial, 0, n)
	for i := 0; i < n; i++ {
		switch (int(c.Fail) + i) % 4 {
		case 0:
			out = append(out, Trial{})
		case 1:
			// A disabled model must behave exactly like no model.
			out = append(out, Trial{Failures: &failure.Model{}})
		case 2:
			fs := failure.Spec{
				TaskFailProb: 0.25,
				RestageRate:  "1 GB/s",
				Seed:         sweep.TrialSeed(c.Seed, i),
				Retry:        &failure.RetrySpec{MaxAttempts: 4, JitterFrac: 0.3},
			}
			fm, err := fs.Compile()
			if err != nil {
				panic(err)
			}
			out = append(out, Trial{Failures: fm})
		default:
			fs := failure.Spec{
				TaskFailProb:      0.15,
				NodeMTBFSeconds:   80,
				NodeRepairSeconds: 15,
				Seed:              sweep.TrialSeed(c.Seed, i),
				Retry:             &failure.RetrySpec{MaxAttempts: 6, Checkpoint: true},
			}
			fm, err := fs.Compile()
			if err != nil {
				panic(err)
			}
			out = append(out, Trial{Failures: fm})
		}
	}
	return out
}

// reference runs each trial through the full per-trial executor and
// projects the scalars; a trial error truncates the reference at that
// index.
func reference(p *Plan, trials []Trial) ([]BatchResult, int, error) {
	out := make([]BatchResult, 0, len(trials))
	for i, tr := range trials {
		res, err := p.Run(tr)
		if err != nil {
			return out, i, err
		}
		out = append(out, res.Scalars())
	}
	return out, -1, nil
}

// checkBatchAgainstReference asserts RunBatch over the trial set matches
// the per-trial reference bit for bit, including the error behavior.
func checkBatchAgainstReference(t *testing.T, p *Plan, trials []Trial, tag string) {
	t.Helper()
	refs, errIdx, refErr := reference(p, trials)

	got := make([]BatchResult, len(trials))
	err := p.RunBatch(trials, got)
	if refErr != nil {
		if err == nil {
			t.Fatalf("%s: reference failed at trial %d (%v) but RunBatch succeeded", tag, errIdx, refErr)
		}
		if !strings.Contains(err.Error(), refErr.Error()) {
			t.Fatalf("%s: RunBatch error %q does not carry reference error %q", tag, err, refErr)
		}
	} else if err != nil {
		t.Fatalf("%s: RunBatch: %v", tag, err)
	}
	for i, want := range refs {
		if got[i] != want {
			t.Fatalf("%s: trial %d: batch %+v != reference %+v", tag, i, got[i], want)
		}
	}

	// RunScalar is the one-trial slice of the same contract.
	for i, tr := range trials {
		if errIdx >= 0 && i >= errIdx {
			break
		}
		br, err := p.RunScalar(tr)
		if err != nil {
			t.Fatalf("%s: RunScalar trial %d: %v", tag, i, err)
		}
		if br != refs[i] {
			t.Fatalf("%s: trial %d: scalar %+v != reference %+v", tag, i, br, refs[i])
		}
	}
}

// TestBatchDifferentialQuick is the randomized wall: plans from all five
// wfgen families on flat, NUMA, and bisection machines, with and without
// payloads/file-system traffic/pool queueing, against mixed failure-free
// and failure-carrying trial sets.
func TestBatchDifferentialQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(7)),
	}
	analyticHits := 0
	if err := quick.Check(func(c diffCase) bool {
		p := c.compile(t)
		if p.Analytic() {
			analyticHits++
		}
		checkBatchAgainstReference(t, p, c.trials(), "quick")
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
	if analyticHits == 0 {
		t.Fatal("no generated plan took the analytic fast path; the differential wall is not covering it")
	}
}

// TestBatchDifferentialExternal covers the external-link override path the
// Monte Carlo ensemble uses (wfgen workflows stage no external data, so
// this builds an LCLS-shaped fan-in: five staged analyses into a merge).
func TestBatchDifferentialExternal(t *testing.T) {
	wf := workflow.New("staged", machine.PartCPU)
	for _, id := range []string{"a", "b", "c", "d", "e", "merge"} {
		if err := wf.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	progs := map[string]Program{
		"merge": {{Kind: PhaseFixed, Seconds: 1, Name: "merge"}},
	}
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		if err := wf.AddDep(id, "merge"); err != nil {
			t.Fatal(err)
		}
		progs[id] = Program{
			{Kind: PhaseExternal, Bytes: units.Bytes(1e12), Name: "loading"},
			{Kind: PhaseFixed, Seconds: 120, Name: "analysis"},
		}
	}
	p, err := Compile(wf, progs, Config{
		Machine:            machine.Perlmutter(),
		ExternalBW:         units.ByteRate(5e9),
		ExternalPerFlowCap: units.ByteRate(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	gb := units.ByteRate(1e9)
	trials := []Trial{
		{},
		{OverrideExternal: true, ExternalBW: 5 * gb, ExternalPerFlowCap: gb},
		{OverrideExternal: true, ExternalBW: gb, ExternalPerFlowCap: gb / 5},
		{OverrideExternal: true, ExternalBW: 5 * gb, ExternalPerFlowCap: gb}, // repeat: memo hit
		{OverrideExternal: true, ExternalBW: 2 * gb},
	}
	checkBatchAgainstReference(t, p, trials, "external")
}

// TestBatchDifferentialGeometry pins the batching geometries the ensembles
// use: K=1, K mid-range, and K larger than the trial count, each fanned
// over the chunked worker pool at 1 and 4 workers. Run under -race this is
// also the concurrency proof for mixed RunBatch calls on one shared plan.
func TestBatchDifferentialGeometry(t *testing.T) {
	cases := []diffCase{
		{FamIdx: 0, MachIdx: 0, Width: 2, Depth: 2, Seed: 3, NoFS: true},          // analytic
		{FamIdx: 3, MachIdx: 1, Width: 3, Depth: 2, Seed: 5, Payload: true},       // event loop, FS link
		{FamIdx: 2, MachIdx: 2, Width: 4, Depth: 1, Seed: 9, Avail: 1, Fail: 2},   // bisection + queueing + failures
		{FamIdx: 4, MachIdx: 1, Width: 2, Depth: 3, Seed: 11, Fail: 3, Trials: 4}, // node faults
	}
	for _, c := range cases {
		p := c.compile(t)
		trials := c.trials()
		// Extend the trial set so K spans below and above it.
		for orig := len(trials); len(trials) < 6; {
			trials = append(trials, trials[len(trials)%orig])
		}
		refs, errIdx, refErr := reference(p, trials)
		if refErr != nil {
			t.Fatalf("case %+v: reference trial %d: %v", c, errIdx, refErr)
		}
		for _, workers := range []int{1, 4} {
			for _, k := range []int{1, 3, len(trials) + 10} {
				got, err := sweep.MapChunks(context.Background(), len(trials), workers, k,
					func(_ context.Context, lo, hi int, out []BatchResult) error {
						return p.RunBatch(trials[lo:hi], out)
					})
				if err != nil {
					t.Fatalf("case %+v workers=%d k=%d: %v", c, workers, k, err)
				}
				for i, want := range refs {
					if got[i] != want {
						t.Fatalf("case %+v workers=%d k=%d trial %d: %+v != %+v",
							c, workers, k, i, got[i], want)
					}
				}
			}
		}
	}
}
