package sim

import (
	"fmt"

	"wroofline/internal/failure"
)

// BatchResult is the scalar slice of a trial Result: exactly the fields the
// ensemble aggregators consume (makespan, throughput, retry counts, the
// dominant retry label). The batch executor produces it without building the
// span Recorder or the per-task maps a full Result carries, which is where
// most of the per-trial allocation went.
//
// Every field is bit-identical to the corresponding full-Result value for
// the same plan and trial; Result.Scalars is the bridge the differential
// tests compare against.
type BatchResult struct {
	// Makespan is the end-to-end virtual time (first start to last end).
	Makespan float64
	// Throughput is total tasks divided by makespan (0 when makespan is 0).
	Throughput float64
	// Retries counts failed attempts across the run (0 without a fault
	// model).
	Retries int
	// NodeFailures counts node outages injected by the fault process.
	NodeFailures int
	// DominantRetry is Result.DominantRetryLabel: the phase label with the
	// most retry seconds, "none" when the run had none.
	DominantRetry string
}

// Scalars projects a full Result onto the batch executor's output surface.
func (r *Result) Scalars() BatchResult {
	return BatchResult{
		Makespan:      r.Makespan,
		Throughput:    r.Throughput,
		Retries:       r.Retries,
		NodeFailures:  r.NodeFailures,
		DominantRetry: r.DominantRetryLabel(),
	}
}

// Analytic reports whether the compiled plan is eligible for the analytic
// fast path: contention-free and failure-free, so scalar trials skip the
// event loop entirely (see analytic.go for the predicate).
func (p *Plan) Analytic() bool { return p.analytic != nil }

// RunBatch executes len(trials) trials sequentially on one checked-out
// scratch, writing the i-th trial's scalars to out[i]. This is the bulk
// counterpart of Plan.Run for ensemble sweeps: the engine, node pool, links,
// state tables, and callback tables are set up once and reset between
// trials, and no Recorder or Result maps are built, so the steady state
// allocates nothing per trial.
//
// Results are bit-identical to calling Run per trial and reading
// Result.Scalars(), in any batching: a trial's outcome depends only on the
// plan and the Trial value (all randomness is the failure model's seeded
// streams), never on its neighbors in the batch. That determinism also
// licenses the executor's trial memo: failure-free trials with identical
// resolved inputs are evaluated once per batch and copied.
//
// Concurrent RunBatch calls (and mixes with Run) are safe. The first trial
// error aborts the batch; out holds valid results for every index before
// the failing one.
func (p *Plan) RunBatch(trials []Trial, out []BatchResult) error {
	if len(out) < len(trials) {
		return fmt.Errorf("sim: batch of %d trials needs %d result slots, got %d",
			len(trials), len(trials), len(out))
	}
	if len(trials) == 0 {
		return nil
	}
	r := p.scratch.Get().(*trialRun)
	err := r.runBatch(p, trials, out)
	r.release(p)
	return err
}

func (r *trialRun) runBatch(p *Plan, trials []Trial, out []BatchResult) error {
	// memo caches failure-free trials by their resolved inputs. Trial is
	// comparable once Failures is dropped; when the plan stages no external
	// data the external override is inert too, so every failure-free trial
	// shares one key.
	var memo map[Trial]BatchResult
	for idx, trial := range trials {
		fm, externalBW, externalCap, err := p.resolveTrial(trial)
		if err != nil {
			return fmt.Errorf("sim: trial %d: %w", idx, err)
		}
		var key Trial
		if fm == nil {
			if p.analytic != nil {
				out[idx] = *p.analytic
				continue
			}
			if p.needExternal && trial.OverrideExternal {
				key = Trial{
					OverrideExternal:   true,
					ExternalBW:         trial.ExternalBW,
					ExternalPerFlowCap: trial.ExternalPerFlowCap,
				}
			}
			if br, ok := memo[key]; ok {
				out[idx] = br
				continue
			}
		}
		br, err := r.runScalar(p, fm, externalBW, externalCap)
		if err != nil {
			return fmt.Errorf("sim: trial %d: %w", idx, err)
		}
		out[idx] = br
		if fm == nil {
			if memo == nil {
				memo = make(map[Trial]BatchResult)
			}
			memo[key] = br
		}
	}
	return nil
}

// RunScalar executes one trial and returns only its scalars — Plan.Run
// without the Result construction, taking the analytic fast path when the
// plan allows it. It reports the same errors as Run.
func (p *Plan) RunScalar(trial Trial) (BatchResult, error) {
	fm, externalBW, externalCap, err := p.resolveTrial(trial)
	if err != nil {
		return BatchResult{}, err
	}
	if fm == nil && p.analytic != nil {
		return *p.analytic, nil
	}
	r := p.scratch.Get().(*trialRun)
	br, err := r.runScalar(p, fm, externalBW, externalCap)
	r.release(p)
	return br, err
}

// runScalar drains one trial in scalar mode and assembles its BatchResult,
// mirroring exactly how trialRun.run derives the same fields for a full
// Result.
func (r *trialRun) runScalar(p *Plan, fm *failure.Model, externalBW, externalCap float64) (BatchResult, error) {
	if err := r.simulate(p, fm, externalBW, externalCap, true); err != nil {
		return BatchResult{}, err
	}
	mk := 0.0
	if r.spans > 0 {
		mk = r.maxEnd - r.minStart
	}
	br := BatchResult{
		Makespan:      mk,
		DominantRetry: dominantRetryLabel(r.retrySeconds),
	}
	if mk > 0 {
		br.Throughput = float64(p.total) / mk
	}
	if r.fm != nil {
		br.Retries = r.retries
		if r.faults != nil {
			br.NodeFailures = r.faults.failures
		}
	}
	return br, nil
}
