package sim

import (
	"fmt"
	"testing"

	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// benchPlanExternal compiles an LCLS-shaped staged fan-in whose external
// flows keep every trial on the event loop (the analytic path never fires).
func benchPlanExternal(b *testing.B) *Plan {
	b.Helper()
	wf := workflow.New("staged", machine.PartCPU)
	progs := map[string]Program{
		"merge": {{Kind: PhaseFixed, Seconds: 1, Name: "merge"}},
	}
	if err := wf.AddTask(&workflow.Task{ID: "merge", Nodes: 1}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("t%d", i)
		if err := wf.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
			b.Fatal(err)
		}
		if err := wf.AddDep(id, "merge"); err != nil {
			b.Fatal(err)
		}
		progs[id] = Program{
			{Kind: PhaseExternal, Bytes: units.Bytes(1e12), Name: "loading"},
			{Kind: PhaseFixed, Seconds: 120, Name: "analysis"},
		}
	}
	p, err := Compile(wf, progs, Config{
		Machine:            machine.Perlmutter(),
		ExternalBW:         units.ByteRate(5e9),
		ExternalPerFlowCap: units.ByteRate(1e9),
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchmarkSimBatch measures the batch executor at batch size k with a
// distinct external rate per trial, which defeats the trial memo — every
// trial runs the full event loop, so ns/op per trial isolates what scratch
// reuse across the batch buys (compare Batch1 against Batch64/Batch1024;
// allocs/op shrinks toward zero per trial as k grows).
func benchmarkSimBatch(b *testing.B, k int) {
	p := benchPlanExternal(b)
	trials := make([]Trial, k)
	for i := range trials {
		trials[i] = Trial{
			OverrideExternal:   true,
			ExternalBW:         units.ByteRate(5e9 + float64(i)*1e6),
			ExternalPerFlowCap: units.ByteRate(1e9),
		}
	}
	out := make([]BatchResult, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.RunBatch(trials, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkSim_Batch1(b *testing.B)    { benchmarkSimBatch(b, 1) }
func BenchmarkSim_Batch64(b *testing.B)   { benchmarkSimBatch(b, 64) }
func BenchmarkSim_Batch1024(b *testing.B) { benchmarkSimBatch(b, 1024) }
