package sim

import "math"

// The analytic fast path.
//
// A discrete-event simulation of a plan is only *necessary* when trials can
// interact with shared, stateful resources: shared links whose fair-share
// rates depend on which flows overlap, a node pool that can queue tasks, or
// a fault process that perturbs execution. When none of those apply, every
// phase has a fixed duration known at compile time and the trial reduces to
// a longest-path computation over the dependency DAG — the event heap adds
// bookkeeping but no information.
//
// computeAnalytic decides eligibility once at Compile and, when eligible,
// runs the longest-path pass once; the result is shared by every
// failure-free scalar trial of the plan. The predicate is deliberately
// conservative — it must be *provably* bit-identical to the event loop, not
// merely close:
//
//   - No failure model compiled in. (Trials carrying their own enabled model
//     fall back to the event loop at run time; see RunBatch/RunScalar.)
//   - No shared-link flows at all (needExternal/needFS/needBis false). Even
//     a single flow on an otherwise idle link is excluded: the link
//     integrates a piecewise virtual work clock, and its float rounding is
//     only reproduced by running it.
//   - The whole workflow fits in the node pool at once (sum of task widths
//     ≤ pool nodes), so Acquire always grants synchronously and no task
//     ever waits in the allocation queue: each task starts exactly when its
//     last predecessor ends.
//   - The phase count fits the MaxEvents budget and every phase duration
//     resolves without error, so a plan the event loop would reject is
//     never silently "succeeded" analytically.
//
// Under those conditions the event loop computes every phase end as
// now + d in event-time arithmetic, which is exactly the float sequence the
// longest-path pass below replays, so the makespan matches bit for bit —
// the property test wall in analytic_test.go and batch_diff_test.go holds
// the two implementations together.
func (p *Plan) computeAnalytic() {
	if p.cfg.Failures.Enabled() {
		return
	}
	if p.needExternal || p.needFS || p.needBis {
		return
	}
	if p.sumNodes > p.nodes {
		return
	}

	// Event-budget parity: every node phase schedules exactly one engine
	// event; zero-byte external/FS phases complete synchronously without
	// one. (Non-zero external/FS phases are excluded above.)
	var events uint64
	durs := make([]float64, p.slots)
	for i, prog := range p.programs {
		off := p.phOff[i]
		for j, ph := range prog {
			switch ph.Kind {
			case PhaseExternal, PhaseFS:
				durs[off+j] = 0
			default:
				events++
				d, err := p.nodePhaseSeconds(p.tasks[i], ph)
				if err != nil || math.IsNaN(d) {
					// The event loop reports this error; stay on it.
					return
				}
				durs[off+j] = d
			}
		}
	}
	if events > p.maxEvents {
		return
	}

	// Longest path in topological order (Kahn over the compiled pred counts
	// and successor lists). ready[i] is task i's start: the max end over its
	// predecessors, exactly the engine time at which its last dependency
	// completes and submits it.
	n := len(p.tasks)
	indeg := make([]int, n)
	copy(indeg, p.preds)
	ready := make([]float64, n)
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	minStart, maxEnd := math.Inf(1), math.Inf(-1)
	processed := 0
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		processed++
		start := ready[i]
		// Replay the attempt's float arithmetic: the foreground chain
		// accumulates fg += d (each phase begins at the engine time the
		// previous one ended), background phases end at their begin + d,
		// and the task ends at the max over all phase ends.
		fg, end := start, start
		off := p.phOff[i]
		for j, ph := range p.programs[i] {
			d := durs[off+j]
			if ph.Background {
				if e := fg + d; e > end {
					end = e
				}
			} else {
				fg += d
				if fg > end {
					end = fg
				}
			}
		}
		if start < minStart {
			minStart = start
		}
		if end > maxEnd {
			maxEnd = end
		}
		for _, s := range p.succs[i] {
			if ready[s] < end {
				ready[s] = end
			}
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != p.total {
		// Unreachable tasks: the event loop reports the dependency deadlock.
		return
	}

	mk := 0.0
	if p.total > 0 {
		mk = maxEnd - minStart
	}
	br := BatchResult{Makespan: mk, DominantRetry: "none"}
	if mk > 0 {
		br.Throughput = float64(p.total) / mk
	}
	p.analytic = &br
}
