package sweep

import (
	"math"
	"testing"
)

// allocSamples returns a deterministic, unsorted ensemble of n makespans.
func allocSamples(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*7919)%997) + 0.5
	}
	return out
}

// TestAggSummaryAllocFloor pins the reusable-scratch contract: after the
// first Summary call grows the sort buffer, repeated calls on the same
// aggregator allocate nothing. Streaming delivery summarizes ~64 times per
// request, so a regression here multiplies straight into the serve path.
func TestAggSummaryAllocFloor(t *testing.T) {
	const n = 512
	a, err := NewAgg(n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range allocSamples(n) {
		if err := a.Add(i, v, "ceiling"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Summary(); err != nil { // grow the scratch once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := a.Summary(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Agg.Summary allocates %.1f objects/call after warmup, want 0", allocs)
	}
}

// TestSummarizerAllocFloor is the same floor for the streaming-prefix path:
// one Summarizer, growing prefixes, zero allocations once the scratch has
// reached the largest prefix.
func TestSummarizerAllocFloor(t *testing.T) {
	samples := allocSamples(512)
	var z Summarizer
	if _, err := z.Summarize(samples); err != nil { // grow the scratch once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, n := range []int{64, 256, 512} { // growing prefixes, as streamed
			if _, err := z.Summarize(samples[:n]); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("Summarizer.Summarize allocates %.1f objects/call after warmup, want 0", allocs)
	}
}

// TestSummarizerMatchesSummarize proves the scratch reuse never changes the
// numbers: package-level Summarize, a shared Summarizer, and Agg.Summary all
// produce bit-identical summaries for the same samples — including a reused
// Summarizer whose scratch still holds a previous, larger sort.
func TestSummarizerMatchesSummarize(t *testing.T) {
	samples := allocSamples(301)
	var z Summarizer
	if _, err := z.Summarize(allocSamples(512)); err != nil { // dirty the scratch
		t.Fatal(err)
	}
	want, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := z.Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Summarizer diverged from Summarize:\n got %+v\nwant %+v", got, want)
	}
	a, err := NewAgg(len(samples))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range samples {
		if err := a.Add(i, v, ""); err != nil {
			t.Fatal(err)
		}
	}
	aggSum, err := a.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if aggSum != want {
		t.Errorf("Agg.Summary diverged from Summarize:\n got %+v\nwant %+v", aggSum, want)
	}
	// Repeated Agg.Summary calls over the reused scratch stay identical too.
	again, err := a.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if again != aggSum {
		t.Errorf("second Agg.Summary diverged: %+v vs %+v", again, aggSum)
	}
}

// TestSummarizerRejectsNaN keeps the NaN guard intact through the scratch
// rewrite.
func TestSummarizerRejectsNaN(t *testing.T) {
	var z Summarizer
	if _, err := z.Summarize([]float64{1, math.NaN(), 3}); err == nil {
		t.Error("NaN ensemble accepted")
	}
	if _, err := z.Summarize(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
}
