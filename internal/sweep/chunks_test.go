package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestChunkSize(t *testing.T) {
	if got := ChunkSize(10000, 4, 256); got != 256 {
		t.Errorf("explicit request: got %d, want 256", got)
	}
	if got := ChunkSize(10000, 4, 0); got != 10000/(4*8) {
		t.Errorf("auto: got %d, want %d", got, 10000/(4*8))
	}
	if got := ChunkSize(5, 4, 0); got != 1 {
		t.Errorf("small n must clamp to 1, got %d", got)
	}
	if got := ChunkSize(10_000_000, 1, 0); got != 1024 {
		t.Errorf("huge n must clamp to 1024, got %d", got)
	}
	// workers <= 0 normalizes through Workers.
	want := 100_000 / (runtime.GOMAXPROCS(0) * 8)
	if want < 1 {
		want = 1
	}
	if want > 1024 {
		want = 1024
	}
	if got := ChunkSize(100_000, 0, 0); got != want {
		t.Errorf("auto workers: got %d, want %d", got, want)
	}
}

func TestMapChunksOrderAndValues(t *testing.T) {
	// n not divisible by chunk exercises the short tail chunk.
	got, err := MapChunks(context.Background(), 10, 3, 3, func(_ context.Context, lo, hi int, out []int) error {
		if hi-lo != len(out) {
			return fmt.Errorf("out len %d for range [%d,%d)", len(out), lo, hi)
		}
		for i := range out {
			out[i] = (lo + i) * (lo + i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len %d, want 10", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// The extended determinism guarantee: identical results at any worker count
// AND any chunk size, because per-trial values derive from TrialSeed(base,
// lo+i), never from chunk geometry.
func TestMapChunksDeterministicAcrossGeometry(t *testing.T) {
	run := func(workers, chunk int) []float64 {
		out, err := MapChunks(context.Background(), 500, workers, chunk, func(_ context.Context, lo, hi int, out []float64) error {
			if lo%7 == 0 { // stagger completion order
				time.Sleep(time.Microsecond)
			}
			for i := range out {
				out[i] = float64(TrialSeed(99, lo+i)%1000) / 7
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1, 1)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, chunk := range []int{1, 3, 64, 500, 1000, 0} { // 0 = auto
			if !reflect.DeepEqual(base, run(workers, chunk)) {
				t.Fatalf("results differ at workers=%d chunk=%d", workers, chunk)
			}
		}
	}
}

func TestMapChunksErrorsLowestChunkWins(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapChunks(context.Background(), 64, 8, 4, func(_ context.Context, lo, hi int, out []int) error {
		if (lo/4)%2 == 1 { // every odd chunk fails; lowest is [4,8)
			return fmt.Errorf("chunk-level: %w", boom)
		}
		for i := range out {
			out[i] = lo + i
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// With a single worker the failing range is fully deterministic.
	_, err = MapChunks(context.Background(), 64, 1, 10, func(_ context.Context, lo, hi int, out []int) error {
		if lo >= 20 {
			return boom
		}
		return nil
	})
	if err == nil || err.Error() != "sweep: trials [20,30): boom" {
		t.Fatalf("err = %v, want sweep: trials [20,30): boom", err)
	}
}

func TestMapChunksErrorCancelsRemaining(t *testing.T) {
	var started atomic.Int64
	_, err := MapChunks(context.Background(), 10000, 2, 1, func(_ context.Context, lo, hi int, out []int) error {
		started.Add(1)
		if lo == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n == 10000 {
		t.Error("error did not stop the remaining chunks")
	}
}

func TestMapChunksContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := MapChunks(ctx, 1_000_000, 2, 1, func(_ context.Context, lo, hi int, out []int) error {
			ran.Add(1)
			time.Sleep(50 * time.Microsecond)
			return nil
		})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	err := <-done
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 1_000_000 {
		t.Error("cancellation did not stop the sweep")
	}
}

func TestMapChunksEdgeCases(t *testing.T) {
	if _, err := MapChunks[int](context.Background(), -1, 1, 1, func(context.Context, int, int, []int) error { return nil }); err == nil {
		t.Error("negative trial count should fail")
	}
	if _, err := MapChunks[int](context.Background(), 1, 1, 1, nil); err == nil {
		t.Error("nil fn should fail")
	}
	out, err := MapChunks(context.Background(), 0, 4, 8, func(context.Context, int, int, []int) error { return nil })
	if err != nil || out == nil || len(out) != 0 {
		t.Errorf("empty sweep: %v, %v", out, err)
	}
	// A chunk larger than n collapses to one call covering [0, n).
	calls := 0
	out2, err := MapChunks(context.Background(), 3, 4, 100, func(_ context.Context, lo, hi int, o []int) error {
		calls++
		if lo != 0 || hi != 3 {
			t.Errorf("range [%d,%d), want [0,3)", lo, hi)
		}
		for i := range o {
			o[i] = 7
		}
		return nil
	})
	if err != nil || calls != 1 || len(out2) != 3 {
		t.Errorf("oversized chunk: calls=%d out=%v err=%v", calls, out2, err)
	}
	// nil context is tolerated.
	if _, err := MapChunks(nil, 3, 2, 1, func(context.Context, int, int, []int) error { return nil }); err != nil { //nolint:staticcheck
		t.Errorf("nil ctx: %v", err)
	}
}
