package sweep

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// fillIdentity is the chunk body used across these tests: out[j] = lo+j,
// so any prefix is checkable by value.
func fillIdentity(_ context.Context, lo, hi int, out []int) error {
	for j := range out {
		out[j] = lo + j
	}
	return nil
}

// TestMapChunksProgressFrontier pins the progress contract across chunk
// geometries: done is strictly increasing, advances land on chunk
// boundaries (or n), the prefix below the frontier is fully written, and
// the final call reports the whole ensemble.
func TestMapChunksProgressFrontier(t *testing.T) {
	for _, tc := range []struct{ n, workers, chunk int }{
		{100, 4, 7},
		{100, 1, 100},
		{64, 8, 1},
		{1, 4, 32},
	} {
		t.Run(fmt.Sprintf("n=%d w=%d c=%d", tc.n, tc.workers, tc.chunk), func(t *testing.T) {
			var dones []int
			out, err := MapChunksProgress(context.Background(), tc.n, tc.workers, tc.chunk,
				fillIdentity, func(done int, prefix []int) {
					if len(prefix) != done {
						t.Errorf("prefix length %d != done %d", len(prefix), done)
					}
					for i, v := range prefix {
						if v != i {
							t.Fatalf("prefix[%d] = %d below the frontier (done=%d)", i, v, done)
						}
					}
					dones = append(dones, done)
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != tc.n {
				t.Fatalf("result length %d, want %d", len(out), tc.n)
			}
			if len(dones) == 0 {
				t.Fatal("no progress calls")
			}
			for i := 1; i < len(dones); i++ {
				if dones[i] <= dones[i-1] {
					t.Fatalf("done not strictly increasing: %v", dones)
				}
			}
			for _, d := range dones {
				if d%tc.chunk != 0 && d != tc.n {
					t.Errorf("done=%d is neither a chunk boundary (chunk=%d) nor n=%d", d, tc.chunk, tc.n)
				}
			}
			if last := dones[len(dones)-1]; last != tc.n {
				t.Errorf("final progress done = %d, want %d", last, tc.n)
			}
		})
	}
}

// TestMapChunksProgressMatchesMapChunks is the byte-identity root: the
// progress variant returns exactly what MapChunks returns for the same
// seeded function, at several worker counts and chunk sizes.
func TestMapChunksProgressMatchesMapChunks(t *testing.T) {
	fn := func(_ context.Context, lo, hi int, out []float64) error {
		for j := range out {
			out[j] = float64(TrialSeed(42, lo+j) % 1000)
		}
		return nil
	}
	want, err := MapChunks(context.Background(), 200, 1, 16, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ workers, chunk int }{{4, 7}, {8, 33}, {2, 200}} {
		got, err := MapChunksProgress(context.Background(), 200, tc.workers, tc.chunk, fn,
			func(int, []float64) {})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d chunk=%d: trial %d = %v, want %v",
					tc.workers, tc.chunk, i, got[i], want[i])
			}
		}
	}
}

// TestMapChunksProgressError checks a failing chunk surfaces its error and
// the frontier never reports past the failure.
func TestMapChunksProgressError(t *testing.T) {
	maxDone := 0
	_, err := MapChunksProgress(context.Background(), 100, 4, 10,
		func(_ context.Context, lo, hi int, out []int) error {
			if lo >= 50 {
				return fmt.Errorf("boom at %d", lo)
			}
			return fillIdentity(nil, lo, hi, out)
		},
		func(done int, _ []int) {
			if done > maxDone {
				maxDone = done
			}
		})
	if err == nil {
		t.Fatal("failing chunk did not surface an error")
	}
	if maxDone > 50 {
		t.Errorf("frontier advanced to %d past the failing chunk at 50", maxDone)
	}
}

// TestSummarize pins the prefix-summary helper: quantiles from a known
// distribution, the empty error, and NaN detection.
func TestSummarize(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(99 - i) // reversed, so sorting matters
	}
	s, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 100 || s.Min != 0 || s.Max != 99 {
		t.Errorf("n/min/max = %d/%v/%v, want 100/0/99", s.N, s.Min, s.Max)
	}
	if s.Mean != 49.5 {
		t.Errorf("mean = %v, want 49.5", s.Mean)
	}
	if s.P50 < 45 || s.P50 > 55 || s.P99 < 95 {
		t.Errorf("quantiles off: p50=%v p99=%v", s.P50, s.P99)
	}
	if s.TailRatio <= 1 {
		t.Errorf("tail ratio = %v, want > 1 for a spread distribution", s.TailRatio)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN sample accepted")
	}
}
