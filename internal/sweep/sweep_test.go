package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTrialSeedDeterministicAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		s := TrialSeed(7, i)
		if s == 0 {
			t.Fatalf("trial %d: zero seed would wedge xorshift", i)
		}
		if s != TrialSeed(7, i) {
			t.Fatalf("trial %d: seed not deterministic", i)
		}
		if seen[s] {
			t.Fatalf("trial %d: seed collision", i)
		}
		seen[s] = true
	}
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Error("different base seeds must give different trial seeds")
	}
}

func TestMapOrderAndValues(t *testing.T) {
	got, err := Map(context.Background(), 100, 8, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// The core determinism guarantee: identical results at worker counts 1, 4,
// and GOMAXPROCS even when trials draw per-trial random values and finish
// out of order.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), 500, workers, func(_ context.Context, i int) (float64, error) {
			// Stagger completion order.
			if i%7 == 0 {
				time.Sleep(time.Microsecond)
			}
			return float64(TrialSeed(99, i)%1000) / 7, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	w1 := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if !reflect.DeepEqual(w1, run(workers)) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
}

func TestMapErrorsLowestIndexWins(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), 64, 8, func(_ context.Context, i int) (int, error) {
		if i%2 == 1 { // every odd trial fails; lowest is 1
			return 0, fmt.Errorf("trial-level: %w", boom)
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// With a single worker the error index is fully deterministic.
	_, err = Map(context.Background(), 64, 1, func(_ context.Context, i int) (int, error) {
		if i >= 5 {
			return 0, boom
		}
		return i, nil
	})
	if err == nil || err.Error() != "sweep: trial 5: boom" {
		t.Fatalf("err = %v, want sweep: trial 5: boom", err)
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	var started atomic.Int64
	_, err := Map(context.Background(), 10000, 2, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n == 10000 {
		t.Error("error did not stop the remaining trials")
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 1_000_000, 2, func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			time.Sleep(50 * time.Microsecond)
			return i, nil
		})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	err := <-done
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 1_000_000 {
		t.Error("cancellation did not stop the sweep")
	}
}

func TestMapEdgeCases(t *testing.T) {
	if _, err := Map[int](context.Background(), -1, 1, func(context.Context, int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative trial count should fail")
	}
	if _, err := Map[int](context.Background(), 1, 1, nil); err == nil {
		t.Error("nil fn should fail")
	}
	out, err := Map(context.Background(), 0, 4, func(context.Context, int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty sweep: %v, %v", out, err)
	}
	// nil context is tolerated.
	if _, err := Map(nil, 3, 2, func(context.Context, int) (int, error) { return 1, nil }); err != nil { //nolint:staticcheck
		t.Errorf("nil ctx: %v", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive requests should default to GOMAXPROCS")
	}
	if Workers(5) != 5 {
		t.Error("positive requests pass through")
	}
}

func TestAggStreamingSummary(t *testing.T) {
	const n = 1000
	agg, err := NewAgg(n)
	if err != nil {
		t.Fatal(err)
	}
	// Feed from several goroutines in scrambled order, as the pool would.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				label := "even"
				if i%2 == 1 {
					label = "odd"
				}
				if err := agg.Add(i, float64(i), label); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if agg.Count() != n {
		t.Fatalf("count = %d", agg.Count())
	}
	s, err := agg.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != n || s.Min != 0 || s.Max != n-1 {
		t.Errorf("summary: %+v", s)
	}
	if math.Abs(s.Mean-float64(n-1)/2) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.P50-float64(n-1)/2) > 1e-9 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < s.P90 || s.P90 < s.P50 {
		t.Errorf("quantiles not monotone: %+v", s)
	}
	wantTail := s.P99 / s.P50
	if s.TailRatio != wantTail {
		t.Errorf("tail = %v, want %v", s.TailRatio, wantTail)
	}
	hist := agg.Hist()
	if len(hist) != 2 || hist[0].Count != 500 || hist[1].Count != 500 {
		t.Fatalf("hist = %+v", hist)
	}
	// Equal counts tie-break by label.
	if hist[0].Label != "even" || hist[1].Label != "odd" {
		t.Errorf("hist order = %+v", hist)
	}
}

func TestAggErrors(t *testing.T) {
	if _, err := NewAgg(0); err == nil {
		t.Error("zero-size aggregator should fail")
	}
	agg, err := NewAgg(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(5, 1, ""); err == nil {
		t.Error("out-of-range index should fail")
	}
	if err := agg.Add(0, math.NaN(), ""); err == nil {
		t.Error("NaN should fail")
	}
	if err := agg.Add(0, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(0, 2, ""); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := agg.Summary(); err == nil {
		t.Error("incomplete ensemble summary should fail")
	}
}

// Agg summaries must be bit-identical regardless of insertion order.
func TestAggOrderIndependence(t *testing.T) {
	const n = 257
	build := func(order []int) Summary {
		agg, err := NewAgg(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			// Values with enough mantissa structure that a different
			// summation order would change the float sum.
			if err := agg.Add(i, 1/float64(i+1), "x"); err != nil {
				t.Fatal(err)
			}
		}
		s, err := agg.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	forward := make([]int, n)
	backward := make([]int, n)
	shuffled := make([]int, n)
	for i := range forward {
		forward[i] = i
		backward[i] = n - 1 - i
		shuffled[i] = i
	}
	sort.Slice(shuffled, func(a, b int) bool {
		return TrialSeed(3, shuffled[a]) < TrialSeed(3, shuffled[b])
	})
	f, bw, sh := build(forward), build(backward), build(shuffled)
	if f != bw || f != sh {
		t.Errorf("summaries differ by insertion order:\n%+v\n%+v\n%+v", f, bw, sh)
	}
}

func TestGridHelpers(t *testing.T) {
	size, err := GridSize([]int{3, 2, 4})
	if err != nil || size != 24 {
		t.Fatalf("size = %d, %v", size, err)
	}
	if _, err := GridSize([]int{3, 0}); err == nil {
		t.Error("zero dimension should fail")
	}
	// Row-major: last dimension varies fastest.
	coords, err := GridCoords([]int{3, 2, 4}, 0)
	if err != nil || !reflect.DeepEqual(coords, []int{0, 0, 0}) {
		t.Fatalf("cell 0 = %v, %v", coords, err)
	}
	coords, _ = GridCoords([]int{3, 2, 4}, 5)
	if !reflect.DeepEqual(coords, []int{0, 1, 1}) {
		t.Fatalf("cell 5 = %v", coords)
	}
	coords, _ = GridCoords([]int{3, 2, 4}, 23)
	if !reflect.DeepEqual(coords, []int{2, 1, 3}) {
		t.Fatalf("cell 23 = %v", coords)
	}
	if _, err := GridCoords([]int{2}, 2); err == nil {
		t.Error("out-of-range cell should fail")
	}
	// Round trip: every flat index maps to unique coords.
	seen := map[string]bool{}
	for i := 0; i < 24; i++ {
		c, err := GridCoords([]int{3, 2, 4}, i)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprint(c)
		if seen[key] {
			t.Fatalf("duplicate coords %v", c)
		}
		seen[key] = true
	}
}
