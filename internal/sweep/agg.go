package sweep

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Agg is a streaming, concurrency-safe ensemble aggregator. Workers feed it
// as trials complete — in any order — and it maintains the running count,
// extremes, and a histogram of labels (typically the binding ceiling per
// scenario). Samples are stored by trial index, so Summary is computed in a
// fixed order and is bit-identical regardless of completion order.
type Agg struct {
	mu      sync.Mutex
	samples []float64
	present []bool
	count   int
	min     float64
	max     float64
	hist    map[string]int
	// scratch holds the sorted copy Summary works over. Streaming delivery
	// summarizes the same aggregator once per progress snapshot (~64 times a
	// request), so the buffer is grown once and reused rather than allocated
	// per call.
	scratch []float64
}

// NewAgg creates an aggregator for n trials.
func NewAgg(n int) (*Agg, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sweep: aggregator needs a positive trial count, got %d", n)
	}
	return &Agg{
		samples: make([]float64, n),
		present: make([]bool, n),
		min:     math.Inf(1),
		max:     math.Inf(-1),
		hist:    make(map[string]int),
	}, nil
}

// Add records trial i's value and optional label (e.g. the name of the
// ceiling that bound the scenario). Each trial may be added once; NaN values
// are rejected so percentiles stay well defined.
func (a *Agg) Add(i int, v float64, label string) error {
	if math.IsNaN(v) {
		return fmt.Errorf("sweep: trial %d produced NaN", i)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if i < 0 || i >= len(a.samples) {
		return fmt.Errorf("sweep: trial index %d outside ensemble of %d", i, len(a.samples))
	}
	if a.present[i] {
		return fmt.Errorf("sweep: trial %d added twice", i)
	}
	a.samples[i] = v
	a.present[i] = true
	a.count++
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
	if label != "" {
		a.hist[label]++
	}
	return nil
}

// Count returns how many trials have been recorded so far.
func (a *Agg) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

// Summary condenses an ensemble into the figures of merit the contention
// study reports: extremes, mean, the P50/P90/P99 quantiles, and the P99/P50
// tail ratio.
type Summary struct {
	// N is the trial count.
	N int `json:"n"`
	// Min, Max, and Mean summarize the ensemble.
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// P50, P90, and P99 are interpolated quantiles.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// TailRatio is P99/P50 (0 when the median is 0).
	TailRatio float64 `json:"tail_ratio"`
}

// Summary finalizes the aggregate. Every trial must have been added — a
// partial ensemble would silently bias the quantiles.
func (a *Agg) Summary() (Summary, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.count != len(a.samples) {
		return Summary{}, fmt.Errorf("sweep: summary of incomplete ensemble: %d of %d trials recorded",
			a.count, len(a.samples))
	}
	// Mean in trial-index order: a fixed summation order keeps the result
	// bit-identical across worker counts (float addition is not associative).
	sum := 0.0
	for _, v := range a.samples {
		sum += v
	}
	if cap(a.scratch) < len(a.samples) {
		a.scratch = make([]float64, len(a.samples))
	}
	sorted := a.scratch[:len(a.samples)]
	copy(sorted, a.samples)
	sort.Float64s(sorted)
	s := Summary{
		N:    a.count,
		Min:  a.min,
		Max:  a.max,
		Mean: sum / float64(a.count),
		P50:  quantile(sorted, 50),
		P90:  quantile(sorted, 90),
		P99:  quantile(sorted, 99),
	}
	if s.P50 != 0 {
		s.TailRatio = s.P99 / s.P50
	}
	return s, nil
}

// quantile interpolates the p-quantile (0..100) of sorted samples, matching
// contention.Distribution.Percentile. An empty slice yields 0 rather than a
// panic: NewAgg rejects n<=0 so Summary never passes one, but the guard keeps
// ad-hoc callers (e.g. failure-ensemble sub-populations that may be empty)
// safe.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// HistBin is one bar of the label histogram.
type HistBin struct {
	// Label is the recorded label (e.g. a binding ceiling's name); Count is
	// how many trials reported it.
	Label string `json:"label"`
	Count int    `json:"count"`
}

// Hist returns the label histogram sorted by descending count, ties broken
// by label — a deterministic "which ceiling binds how often" breakdown.
func (a *Agg) Hist() []HistBin {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]HistBin, 0, len(a.hist))
	for label, count := range a.hist {
		out = append(out, HistBin{Label: label, Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	return out
}
