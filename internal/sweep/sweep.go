// Package sweep is the toolkit's parallel ensemble engine: it fans
// independent model evaluations — Monte Carlo contention trials, what-if
// scenario grids, archetype shape surveys — across a bounded pool of
// goroutines while keeping results bit-identical regardless of worker count
// or completion order.
//
// Determinism rests on two rules every client follows:
//
//  1. Each trial owns its randomness. A trial's RNG is seeded from
//     (base seed, trial index) via TrialSeed, never from a shared stream,
//     so trial i draws the same values whether it runs first, last, or
//     concurrently with trial j.
//  2. Results land in index order. Map writes each trial's result into the
//     trial's slot of a preallocated slice; aggregation then walks that
//     slice (or sorts a copy), so the output never depends on which worker
//     finished first.
//
// Cancellation flows through context.Context: the first trial error — or a
// cancelled parent context — stops the remaining trials.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// TrialSeed derives the RNG seed for one trial from the ensemble's base
// seed, using the splitmix64 finalizer. Seeds for adjacent trial indices are
// statistically independent, and the mapping depends only on (base, trial) —
// the foundation of worker-count-independent determinism.
func TrialSeed(base uint64, trial int) uint64 {
	z := base + (uint64(trial)+1)*0x9E3779B97F4A7C15 // golden-ratio increment
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 { // xorshift generators cannot leave state zero
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// Workers normalizes a worker-count request: n <= 0 means "one worker per
// available CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map evaluates fn(ctx, i) for every trial i in [0, n) on up to workers
// goroutines (Workers(workers) applies, and the pool never exceeds n). The
// result slice is indexed by trial, so identical inputs produce identical
// outputs at any worker count.
//
// The first trial error cancels the remaining trials and is returned
// wrapped with its trial index; when several trials fail concurrently the
// lowest-indexed error wins, keeping failure reports deterministic too. A
// cancelled parent context aborts the run and returns the context's error.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, trial int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: trial count must be non-negative, got %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil trial function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if n == 0 {
		return []T{}, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, n)
	var (
		next    atomic.Int64
		mu      sync.Mutex
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	next.Store(-1)
	fail := func(i int, err error) {
		mu.Lock()
		if firstEr == nil || i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || runCtx.Err() != nil {
					return
				}
				v, err := fn(runCtx, i)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, fmt.Errorf("sweep: trial %d: %w", errIdx, firstEr)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: cancelled: %w", err)
	}
	return out, nil
}

// ChunkSize normalizes a batch-size request for MapChunks. A positive
// request is used as-is; otherwise the default aims at ~8 chunks per worker
// (so the pool load-balances across uneven chunk costs) clamped to [1, 1024]
// (so per-chunk state like a batch executor's scratch stays cache-resident
// and is still amortized over many trials).
func ChunkSize(n, workers, requested int) int {
	if requested > 0 {
		return requested
	}
	c := n / (Workers(workers) * 8)
	if c < 1 {
		return 1
	}
	if c > 1024 {
		return 1024
	}
	return c
}

// MapChunks evaluates fn over [0, n) in contiguous chunks of ChunkSize(n,
// workers, chunk) trials: fn(ctx, lo, hi, out[lo:hi]) must fill one result
// per trial index in [lo, hi). Chunks are distributed across up to workers
// goroutines exactly like Map distributes trials, and results land by index,
// so outputs are identical at any worker count AND any chunk size — clients
// derive per-trial randomness from TrialSeed(base, lo+i), never from chunk
// geometry.
//
// The first chunk error cancels the remaining chunks and is returned wrapped
// with the chunk's trial range; concurrent failures resolve to the
// lowest-indexed chunk, keeping failure reports deterministic.
//
// MapChunks is MapChunksProgress without a frontier callback; see that
// variant for streaming partial results.
func MapChunks[T any](ctx context.Context, n, workers, chunk int, fn func(ctx context.Context, lo, hi int, out []T) error) ([]T, error) {
	return MapChunksProgress(ctx, n, workers, chunk, fn, nil)
}

// GridSize returns the cell count of a cartesian product with the given
// per-dimension sizes. Every dimension must be positive.
func GridSize(dims []int) (int, error) {
	size := 1
	for i, d := range dims {
		if d <= 0 {
			return 0, fmt.Errorf("sweep: grid dimension %d has size %d, need >= 1", i, d)
		}
		if size > 1<<40/d {
			return 0, fmt.Errorf("sweep: grid of %v cells is too large", dims)
		}
		size *= d
	}
	return size, nil
}

// GridCoords decomposes a flat cell index into per-dimension coordinates in
// row-major order (the last dimension varies fastest). It inverts the
// enumeration Map uses when sweeping a grid, so cell ordering — and with it
// report output — is deterministic.
func GridCoords(dims []int, flat int) ([]int, error) {
	size, err := GridSize(dims)
	if err != nil {
		return nil, err
	}
	if flat < 0 || flat >= size {
		return nil, fmt.Errorf("sweep: cell index %d outside grid of %d cells", flat, size)
	}
	coords := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		coords[i] = flat % dims[i]
		flat /= dims[i]
	}
	return coords, nil
}
