package sweep

import (
	"math"
	"testing"
)

// TestQuantileEmptySlice is the regression test for the missing empty-slice
// guard: quantile indexed sorted[lo] unconditionally, which panics on an
// empty ensemble.
func TestQuantileEmptySlice(t *testing.T) {
	for _, p := range []float64{0, 50, 99, 100} {
		if got := quantile(nil, p); got != 0 {
			t.Errorf("quantile(nil, %v) = %v, want 0", p, got)
		}
		if got := quantile([]float64{}, p); got != 0 {
			t.Errorf("quantile(empty, %v) = %v, want 0", p, got)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"single sample", []float64{7}, 99, 7},
		{"median of two", []float64{0, 10}, 50, 5},
		{"exact index", []float64{1, 2, 3, 4, 5}, 50, 3},
		{"interpolated", []float64{0, 10}, 25, 2.5},
		{"p0 is min", []float64{3, 8, 9}, 0, 3},
		{"p100 is max", []float64{3, 8, 9}, 100, 9},
	}
	for _, tc := range cases {
		if got := quantile(tc.sorted, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: quantile(%v, %v) = %v, want %v", tc.name, tc.sorted, tc.p, got, tc.want)
		}
	}
}
