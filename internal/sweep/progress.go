package sweep

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// MapChunksProgress is MapChunks plus a completion-frontier callback:
// whenever the contiguous prefix of completed trials advances, progress is
// invoked with the new prefix length and the stable prefix of the result
// slice. Calls are serialized and done is strictly increasing, finishing
// with progress(n, out) once the last chunk lands. The prefix is safe to
// read without synchronization — every trial below the frontier has been
// fully written and no worker will touch it again — but it aliases the
// final result slice, so callers must not mutate it and must copy anything
// they keep past the callback.
//
// The callback runs on a worker goroutine while the frontier lock is held:
// keep it short (snapshot a prefix, notify a channel) and never call back
// into the sweep from inside it. A nil progress makes this exactly
// MapChunks.
func MapChunksProgress[T any](ctx context.Context, n, workers, chunk int, fn func(ctx context.Context, lo, hi int, out []T) error, progress func(done int, prefix []T)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: trial count must be non-negative, got %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil chunk function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if n == 0 {
		return []T{}, nil
	}
	workers = Workers(workers)
	chunk = ChunkSize(n, workers, chunk)
	nchunks := (n + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, n)
	var (
		next    atomic.Int64
		mu      sync.Mutex
		errLo   = -1
		errHi   = -1
		firstEr error
		wg      sync.WaitGroup
		fr      *frontier
	)
	var emit func(done int)
	if progress != nil {
		fr = &frontier{done: make([]bool, nchunks), chunk: chunk, n: n}
		emit = func(done int) { progress(done, out[:done]) }
	}
	next.Store(-1)
	fail := func(lo, hi int, err error) {
		mu.Lock()
		if firstEr == nil || lo < errLo {
			errLo, errHi, firstEr = lo, hi, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1))
				if c >= nchunks || runCtx.Err() != nil {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if err := fn(runCtx, lo, hi, out[lo:hi]); err != nil {
					fail(lo, hi, err)
					return
				}
				if fr != nil {
					fr.complete(c, emit)
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, fmt.Errorf("sweep: trials [%d,%d): %w", errLo, errHi, firstEr)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: cancelled: %w", err)
	}
	return out, nil
}

// frontier tracks which chunks have completed and where the contiguous
// completed prefix ends. Completion order is arbitrary (workers race), but
// the frontier only ever advances, so progress callbacks see strictly
// increasing trial counts.
type frontier struct {
	mu    sync.Mutex
	done  []bool
	next  int // first chunk not yet complete
	chunk int
	n     int
}

// complete marks chunk c done and, if the prefix advanced, reports the new
// trial frontier. The callback runs under the lock — that is what makes
// calls serial and monotonic.
func (f *frontier) complete(c int, progress func(done int)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.done[c] = true
	advanced := false
	for f.next < len(f.done) && f.done[f.next] {
		f.next++
		advanced = true
	}
	if !advanced {
		return
	}
	trials := f.next * f.chunk
	if trials > f.n {
		trials = f.n
	}
	progress(trials)
}

// Summarize condenses a completed sample slice into a Summary using the
// same fixed-order arithmetic as Agg.Summary: mean summed in index order,
// quantiles interpolated over a sorted copy. It exists so streaming callers
// can summarize a stable prefix (samples[:done] from MapChunksProgress)
// without building an Agg per snapshot. Loop callers should hold a
// Summarizer instead — this form allocates a fresh sort buffer per call.
func Summarize(samples []float64) (Summary, error) {
	return new(Summarizer).Summarize(samples)
}

// Summarizer is Summarize with a reusable sort buffer. Progress callbacks
// summarize a growing prefix once per frontier advance (~64 snapshots per
// streamed request); one Summarizer grows its scratch to the final trial
// count and every later snapshot sorts in place, allocation-free. Not safe
// for concurrent use — MapChunksProgress serializes progress callbacks, so a
// per-run Summarizer needs no lock.
type Summarizer struct {
	scratch []float64
}

// Summarize condenses samples exactly like the package-level Summarize,
// reusing the Summarizer's scratch buffer for the sorted copy.
func (z *Summarizer) Summarize(samples []float64) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, fmt.Errorf("sweep: summary of empty ensemble")
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	if cap(z.scratch) < len(samples) {
		z.scratch = make([]float64, len(samples))
	}
	sorted := z.scratch[:len(samples)]
	copy(sorted, samples)
	sort.Float64s(sorted)
	// sort.Float64s treats NaN as less than everything, so any NaN in the
	// ensemble is at the front after sorting.
	if math.IsNaN(sorted[0]) {
		return Summary{}, fmt.Errorf("sweep: summary of ensemble containing NaN")
	}
	s := Summary{
		N:    len(samples),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(samples)),
		P50:  quantile(sorted, 50),
		P90:  quantile(sorted, 90),
		P99:  quantile(sorted, 99),
	}
	if s.P50 != 0 {
		s.TailRatio = s.P99 / s.P50
	}
	return s, nil
}
