package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomJobs derives a workload of up to 15 jobs on up to 64 nodes from seed.
func randomJobs(seed int64) ([]Job, int) {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(15) + 1
	total := rng.Intn(63) + 1
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:       fmt.Sprintf("j%02d", i),
			Nodes:    rng.Intn(total) + 1,
			Duration: float64(rng.Intn(200)),
			Submit:   float64(rng.Intn(100)),
		}
	}
	return jobs, total
}

// TestQuickBackfillBeatsFIFOMakespan is the FIFO-vs-backfill property check.
// EASY backfill's guarantee is per-head-job only: a job backfilled onto the
// "extra" nodes may run past the shadow time and delay a later wide job, so
// "makespan(easy) <= makespan(fifo)" does NOT hold per instance (see
// TestBackfillCanWorsenMakespan for a pinned counterexample). What does hold,
// and what this property asserts over each quick-generated batch of 50
// random workloads, is the aggregate claim that motivates backfilling at
// all:
//
//  1. mean makespan under backfill <= mean makespan under FIFO,
//  2. backfill wins or ties on at least 80% of instances, and
//  3. when backfill grants nothing out of order it reproduces FIFO exactly.
func TestQuickBackfillBeatsFIFOMakespan(t *testing.T) {
	f := func(seed int64) bool {
		const batch = 50
		wins, sumFIFO, sumEasy := 0, 0.0, 0.0
		for k := 0; k < batch; k++ {
			jobs, total := randomJobs(seed + int64(k)*1_000_003)
			fifo, err1 := Simulate(jobs, total, FIFO)
			easy, err2 := Simulate(jobs, total, Backfill)
			if err1 != nil || err2 != nil {
				return false
			}
			sumFIFO += fifo.Makespan
			sumEasy += easy.Makespan
			if easy.Makespan <= fifo.Makespan+1e-9 {
				wins++
			}
			if easy.BackfilledJobs == 0 && math.Abs(easy.Makespan-fifo.Makespan) > 1e-9 {
				return false // no queue-jumpers means the schedules must agree
			}
		}
		return sumEasy <= sumFIFO+1e-9 && float64(wins) >= 0.8*batch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBackfillCanWorsenMakespan pins a counterexample showing the per-
// instance property is genuinely false: j10 (25 nodes, 185 s) backfills onto
// extra nodes, outlives the shadow time, and pushes the wide tail jobs late
// enough that the easy makespan exceeds FIFO's. If this test ever fails with
// easy <= fifo the backfill policy changed character and the batch property
// above should be tightened.
func TestBackfillCanWorsenMakespan(t *testing.T) {
	jobs := []Job{
		{ID: "j00", Nodes: 31, Duration: 134, Submit: 93},
		{ID: "j01", Nodes: 13, Duration: 127, Submit: 13},
		{ID: "j02", Nodes: 31, Duration: 30, Submit: 0},
		{ID: "j03", Nodes: 30, Duration: 73, Submit: 12},
		{ID: "j04", Nodes: 7, Duration: 48, Submit: 16},
		{ID: "j05", Nodes: 18, Duration: 129, Submit: 41},
		{ID: "j06", Nodes: 12, Duration: 42, Submit: 72},
		{ID: "j07", Nodes: 10, Duration: 164, Submit: 40},
		{ID: "j08", Nodes: 30, Duration: 52, Submit: 0},
		{ID: "j09", Nodes: 2, Duration: 69, Submit: 94},
		{ID: "j10", Nodes: 25, Duration: 185, Submit: 31},
		{ID: "j11", Nodes: 30, Duration: 43, Submit: 89},
		{ID: "j12", Nodes: 9, Duration: 66, Submit: 85},
	}
	fifo, err := Simulate(jobs, 39, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	easy, err := Simulate(jobs, 39, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if easy.Makespan <= fifo.Makespan {
		t.Errorf("counterexample no longer holds: easy %v <= fifo %v", easy.Makespan, fifo.Makespan)
	}
}
