// Package sched simulates batch-scheduler node allocation over time. It
// provides two policies — strict FIFO and EASY backfill — so the toolkit can
// study how queueing policy interacts with the system parallelism wall (an
// ablation called out in DESIGN.md). The workflow simulator (internal/sim)
// uses plain FIFO pools; this package is the standalone policy model.
package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// timeEps is the single time-comparison tolerance for the whole scheduler:
// completions, arrivals, and backfill-eligibility checks all use it. Two
// different epsilons (1e-9 for backfill, 1e-12 for the event loop) once let
// a job count as "ending by the shadow time" for backfill while its nodes
// were not considered free at that same instant, delaying the head job's
// reservation.
const timeEps = 1e-9

// Policy selects the queueing discipline.
type Policy int

const (
	// FIFO grants strictly in arrival order; a large job at the head blocks
	// everything behind it.
	FIFO Policy = iota
	// Backfill implements EASY backfill: the head job gets a reservation at
	// the earliest time enough nodes will be free, and later jobs may jump
	// ahead only if they finish (by their estimate) before that reservation.
	Backfill
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Backfill:
		return "easy-backfill"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Job is one batch job: a node count, a duration (the simulation treats the
// estimate as exact), and a submission time.
type Job struct {
	// ID names the job.
	ID string
	// Nodes is the node requirement.
	Nodes int
	// Duration is the runtime in seconds once started.
	Duration float64
	// Submit is the submission time in seconds.
	Submit float64
}

// Placement records when a job started and ended.
type Placement struct {
	// Start is the grant time.
	Start float64
	// End is Start + Duration.
	End float64
	// Backfilled marks jobs that jumped the queue.
	Backfilled bool
}

// Result is a completed schedule.
type Result struct {
	// Placements maps job id to its placement.
	Placements map[string]Placement
	// Makespan is the latest end time.
	Makespan float64
	// Policy echoes the discipline used.
	Policy Policy
	// BackfilledJobs counts queue-jumpers (always 0 for FIFO).
	BackfilledJobs int
}

// WaitTime returns the average queue wait (start - submit) across jobs. A
// job absent from the placements is an error: silently reading the zero
// value would subtract the submit time from a phantom start at t=0 and drag
// the average negative.
func (r *Result) WaitTime(jobs []Job) (float64, error) {
	if len(jobs) == 0 {
		return 0, nil
	}
	total := 0.0
	for _, j := range jobs {
		p, ok := r.Placements[j.ID]
		if !ok {
			return 0, fmt.Errorf("sched: job %q has no placement in this result", j.ID)
		}
		total += p.Start - j.Submit
	}
	return total / float64(len(jobs)), nil
}

// running is an active job in the node-availability heap.
type running struct {
	end   float64
	nodes int
}

type runHeap []running

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(running)) }
func (h *runHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h runHeap) peekEnd() float64   { return h[0].end }

// Simulate runs the schedule to completion and returns per-job placements.
// Jobs are considered in (Submit, input order) sequence; ids must be unique.
func Simulate(jobs []Job, totalNodes int, policy Policy) (*Result, error) {
	if totalNodes <= 0 {
		return nil, fmt.Errorf("sched: need positive node count, got %d", totalNodes)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("sched: job with empty id")
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("sched: duplicate job id %q", j.ID)
		}
		seen[j.ID] = true
		if j.Nodes <= 0 || j.Nodes > totalNodes {
			return nil, fmt.Errorf("sched: job %q needs %d nodes of %d", j.ID, j.Nodes, totalNodes)
		}
		if j.Duration < 0 || math.IsNaN(j.Duration) || math.IsInf(j.Duration, 0) {
			return nil, fmt.Errorf("sched: job %q has invalid duration %v", j.ID, j.Duration)
		}
		if j.Submit < 0 || math.IsNaN(j.Submit) {
			return nil, fmt.Errorf("sched: job %q has invalid submit time %v", j.ID, j.Submit)
		}
	}

	// Stable order by submit time.
	order := make([]Job, len(jobs))
	copy(order, jobs)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Submit < order[j].Submit })

	res := &Result{Placements: make(map[string]Placement, len(jobs)), Policy: policy}
	var queue []Job    // waiting, in arrival order
	var active runHeap // running jobs by end time
	free := totalNodes
	now := 0.0
	next := 0 // next job in order to arrive

	start := func(j Job, t float64, backfilled bool) {
		free -= j.Nodes
		end := t + j.Duration
		heap.Push(&active, running{end: end, nodes: j.Nodes})
		res.Placements[j.ID] = Placement{Start: t, End: end, Backfilled: backfilled}
		if backfilled {
			res.BackfilledJobs++
		}
		if end > res.Makespan {
			res.Makespan = end
		}
	}

	// dispatch starts queued jobs according to the policy at time now.
	dispatch := func() {
		// FIFO front-of-queue grants (both policies do this first).
		for len(queue) > 0 && queue[0].Nodes <= free {
			start(queue[0], now, false)
			queue = queue[1:]
		}
		if policy != Backfill || len(queue) == 0 {
			return
		}
		// EASY: give the head job a reservation at the shadow time — the
		// earliest instant enough nodes accumulate from completions — then
		// let later jobs jump ahead only if they cannot delay it.
		head := queue[0]
		shadow := now
		avail := free
		ends := make([]running, len(active))
		copy(ends, active)
		sort.Slice(ends, func(i, j int) bool { return ends[i].end < ends[j].end })
		for _, r := range ends {
			if avail >= head.Nodes {
				break
			}
			avail += r.nodes
			shadow = r.end
		}
		// extra = nodes still free at the shadow time once the head starts;
		// a backfilled job using at most this many can run past the shadow
		// time without delaying the reservation.
		extra := avail - head.Nodes
		for i := 1; i < len(queue); {
			cand := queue[i]
			fitsNow := cand.Nodes <= free
			endsInTime := now+cand.Duration <= shadow+timeEps
			withinExtra := cand.Nodes <= extra
			if fitsNow && (endsInTime || withinExtra) {
				start(cand, now, true)
				queue = append(queue[:i], queue[i+1:]...)
				if withinExtra && !endsInTime {
					extra -= cand.Nodes
				}
				i = 1 // free changed; rescan
				continue
			}
			i++
		}
	}

	for next < len(order) || len(queue) > 0 || active.Len() > 0 {
		// Advance time to the next interesting instant.
		tArrive, tFinish := math.Inf(1), math.Inf(1)
		if next < len(order) {
			tArrive = order[next].Submit
		}
		if active.Len() > 0 {
			tFinish = active.peekEnd()
		}
		if math.IsInf(tArrive, 1) && math.IsInf(tFinish, 1) {
			// Queue non-empty but nothing running and nothing arriving:
			// impossible given per-job validation (every job fits).
			return nil, fmt.Errorf("sched: deadlock with %d queued jobs", len(queue))
		}
		now = math.Min(tArrive, tFinish)
		// Process completions at now.
		for active.Len() > 0 && active.peekEnd() <= now+timeEps {
			r := heap.Pop(&active).(running)
			free += r.nodes
		}
		// Process arrivals at now.
		for next < len(order) && order[next].Submit <= now+timeEps {
			queue = append(queue, order[next])
			next++
		}
		dispatch()
	}
	return res, nil
}
