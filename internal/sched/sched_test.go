package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimulateSingleJob(t *testing.T) {
	res, err := Simulate([]Job{{ID: "a", Nodes: 4, Duration: 10}}, 8, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Placements["a"]
	if p.Start != 0 || p.End != 10 {
		t.Errorf("placement = %+v", p)
	}
	if res.Makespan != 10 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestSimulateSerialWhenFull(t *testing.T) {
	jobs := []Job{
		{ID: "a", Nodes: 8, Duration: 10},
		{ID: "b", Nodes: 8, Duration: 10},
	}
	res, err := Simulate(jobs, 8, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placements["b"].Start != 10 {
		t.Errorf("b should start when a ends, got %v", res.Placements["b"].Start)
	}
	if res.Makespan != 20 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestSimulateParallelWall(t *testing.T) {
	// 28 concurrent 64-node jobs fit on 1792 nodes; the 29th waits.
	var jobs []Job
	for i := 0; i < 29; i++ {
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%02d", i), Nodes: 64, Duration: 100})
	}
	res, err := Simulate(jobs, 1792, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	started := 0
	for _, j := range jobs {
		if res.Placements[j.ID].Start == 0 {
			started++
		}
	}
	if started != 28 {
		t.Errorf("jobs started at t=0: %d, want 28 (the parallelism wall)", started)
	}
	if res.Makespan != 200 {
		t.Errorf("makespan = %v, want 200", res.Makespan)
	}
}

func TestFIFOHeadOfLineVsBackfill(t *testing.T) {
	// 10 nodes. Job a (6 nodes, 100 s) runs. Job big (8 nodes, 10 s) queues.
	// Job small (2 nodes, 50 s) arrives after big.
	// FIFO: small waits behind big until t=100.
	// EASY: small fits now and ends (t=50) before big's reservation (t=100),
	// so it backfills at t=0.
	jobs := []Job{
		{ID: "a", Nodes: 6, Duration: 100, Submit: 0},
		{ID: "big", Nodes: 8, Duration: 10, Submit: 1},
		{ID: "small", Nodes: 2, Duration: 50, Submit: 2},
	}
	fifo, err := Simulate(jobs, 10, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Placements["small"].Start < 100 {
		t.Errorf("FIFO small started at %v, want >= 100", fifo.Placements["small"].Start)
	}
	if fifo.BackfilledJobs != 0 {
		t.Errorf("FIFO backfilled %d jobs", fifo.BackfilledJobs)
	}
	easy, err := Simulate(jobs, 10, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if easy.Placements["small"].Start != 2 {
		t.Errorf("EASY small started at %v, want 2 (backfilled)", easy.Placements["small"].Start)
	}
	if !easy.Placements["small"].Backfilled {
		t.Error("small should be marked backfilled")
	}
	// The head job must not be delayed by the backfill.
	if easy.Placements["big"].Start > fifo.Placements["big"].Start+1e-9 {
		t.Errorf("backfill delayed the head job: %v vs %v",
			easy.Placements["big"].Start, fifo.Placements["big"].Start)
	}
	if easy.Makespan > fifo.Makespan+1e-9 {
		t.Errorf("backfill worsened makespan: %v vs %v", easy.Makespan, fifo.Makespan)
	}
}

func TestBackfillDoesNotDelayReservation(t *testing.T) {
	// 10 nodes. a (6 nodes, 10 s). big (10 nodes, 10 s) reserves t=10.
	// long (4 nodes, 100 s) must NOT backfill: it fits now but would hold 4
	// nodes past t=10, delaying big (extra at shadow time = 0).
	jobs := []Job{
		{ID: "a", Nodes: 6, Duration: 10, Submit: 0},
		{ID: "big", Nodes: 10, Duration: 10, Submit: 1},
		{ID: "long", Nodes: 4, Duration: 100, Submit: 2},
	}
	res, err := Simulate(jobs, 10, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placements["big"].Start != 10 {
		t.Errorf("big start = %v, want 10 (reservation honoured)", res.Placements["big"].Start)
	}
	if res.Placements["long"].Start < 20 {
		t.Errorf("long start = %v, want >= 20", res.Placements["long"].Start)
	}
}

func TestBackfillWithinExtraNodes(t *testing.T) {
	// 10 nodes. a (6, 10 s). head (7 nodes, 10 s) reserves t=10 with extra
	// = 10-7 = 3 at the shadow time. cand (3 nodes, 1000 s) fits now and
	// within extra, so it backfills even though it outlives the shadow time.
	jobs := []Job{
		{ID: "a", Nodes: 6, Duration: 10, Submit: 0},
		{ID: "head", Nodes: 7, Duration: 10, Submit: 1},
		{ID: "cand", Nodes: 3, Duration: 1000, Submit: 2},
	}
	res, err := Simulate(jobs, 10, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placements["cand"].Start != 2 {
		t.Errorf("cand start = %v, want 2", res.Placements["cand"].Start)
	}
	if res.Placements["head"].Start != 10 {
		t.Errorf("head start = %v, want 10 (not delayed)", res.Placements["head"].Start)
	}
}

func TestSubmitTimesRespected(t *testing.T) {
	jobs := []Job{
		{ID: "late", Nodes: 1, Duration: 5, Submit: 100},
		{ID: "early", Nodes: 1, Duration: 5, Submit: 0},
	}
	res, err := Simulate(jobs, 4, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placements["early"].Start != 0 {
		t.Errorf("early start = %v", res.Placements["early"].Start)
	}
	if res.Placements["late"].Start != 100 {
		t.Errorf("late start = %v, want 100 (cannot start before submit)", res.Placements["late"].Start)
	}
	w, err := res.WaitTime(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Errorf("wait time = %v, want 0", w)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(nil, 0, FIFO); err == nil {
		t.Error("zero nodes should fail")
	}
	bad := [][]Job{
		{{ID: "", Nodes: 1, Duration: 1}},
		{{ID: "a", Nodes: 1, Duration: 1}, {ID: "a", Nodes: 1, Duration: 1}},
		{{ID: "a", Nodes: 0, Duration: 1}},
		{{ID: "a", Nodes: 100, Duration: 1}},
		{{ID: "a", Nodes: 1, Duration: -1}},
		{{ID: "a", Nodes: 1, Duration: math.NaN()}},
		{{ID: "a", Nodes: 1, Duration: 1, Submit: -5}},
	}
	for i, jobs := range bad {
		if _, err := Simulate(jobs, 10, FIFO); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || Backfill.String() != "easy-backfill" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should print")
	}
}

func TestZeroDurationJobs(t *testing.T) {
	res, err := Simulate([]Job{
		{ID: "a", Nodes: 5, Duration: 0},
		{ID: "b", Nodes: 5, Duration: 0},
	}, 5, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

// Property: for random workloads, (1) every job starts at or after submit,
// (2) node usage never exceeds capacity at any placement boundary, and
// (3) EASY backfill never worsens the head-job start order's makespan badly:
// makespan(easy) <= makespan(fifo) + epsilon is NOT guaranteed in general,
// but every job must still be placed exactly once.
func TestQuickScheduleInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 1
		total := 64
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{
				ID:       fmt.Sprintf("j%02d", i),
				Nodes:    rng.Intn(total) + 1,
				Duration: float64(rng.Intn(100)),
				Submit:   float64(rng.Intn(50)),
			}
		}
		for _, pol := range []Policy{FIFO, Backfill} {
			res, err := Simulate(jobs, total, pol)
			if err != nil {
				return false
			}
			if len(res.Placements) != n {
				return false
			}
			for _, j := range jobs {
				p, ok := res.Placements[j.ID]
				if !ok || p.Start < j.Submit-1e-9 {
					return false
				}
				if math.Abs(p.End-p.Start-j.Duration) > 1e-9 {
					return false
				}
			}
			// Check capacity at every start instant.
			for _, j := range jobs {
				at := res.Placements[j.ID].Start
				used := 0
				for _, k := range jobs {
					p := res.Placements[k.ID]
					if p.Start <= at+1e-12 && at < p.End-1e-12 {
						used += k.Nodes
					}
				}
				if used > total {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: with homogeneous jobs, EASY backfill and FIFO agree exactly.
func TestQuickHomogeneousPoliciesAgree(t *testing.T) {
	f := func(nRaw, nodesRaw, durRaw uint8) bool {
		n := int(nRaw%20) + 1
		nodes := int(nodesRaw%16) + 1
		dur := float64(durRaw%50) + 1
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{ID: fmt.Sprintf("j%02d", i), Nodes: nodes, Duration: dur}
		}
		fifo, err1 := Simulate(jobs, 64, FIFO)
		easy, err2 := Simulate(jobs, 64, Backfill)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(fifo.Makespan-easy.Makespan) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
