package sched

import (
	"strings"
	"testing"
)

// TestEpsilonUnifiedAcrossBackfillAndCompletion is the regression test for
// the mixed-epsilon bug: backfill eligibility used 1e-9 while the completion
// drain used 1e-12, so a backfilled job whose end landed inside the gap
// (shadow < end <= shadow+1e-9) was admitted as "ends in time" yet still
// held its nodes when the head's shadow time arrived, delaying the head
// past its reservation.
func TestEpsilonUnifiedAcrossBackfillAndCompletion(t *testing.T) {
	// 2 nodes. A (1 node) runs 0-10. H (2 nodes, head) reserves the shadow
	// time t=10. C (1 node, duration 8.0000000005) backfills at t=2 and ends
	// at 10.0000000005 — inside the (1e-12, 1e-9] gap past the shadow time.
	jobs := []Job{
		{ID: "A", Nodes: 1, Duration: 10, Submit: 0},
		{ID: "H", Nodes: 2, Duration: 5, Submit: 1},
		{ID: "C", Nodes: 1, Duration: 8.0000000005, Submit: 2},
	}
	res, err := Simulate(jobs, 2, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Placements["C"]
	if !c.Backfilled || c.Start != 2 {
		t.Fatalf("C placement = %+v, want backfilled at t=2", c)
	}
	// With one epsilon everywhere, C's nodes count as free at the shadow
	// time it was admitted against, so H starts exactly at its reservation.
	if h := res.Placements["H"]; h.Start != 10 {
		t.Errorf("H start = %.12f, want exactly 10 (reservation honoured)", h.Start)
	}
	if res.Makespan != 15 {
		t.Errorf("makespan = %.12f, want 15", res.Makespan)
	}
}

// TestWaitTimeMissingPlacementErrors is the regression test for WaitTime
// silently reading the zero-value Placement for unknown job ids: a phantom
// start at t=0 subtracted a real submit time and dragged the average
// negative.
func TestWaitTimeMissingPlacementErrors(t *testing.T) {
	jobs := []Job{
		{ID: "a", Nodes: 2, Duration: 10, Submit: 0},
		{ID: "b", Nodes: 2, Duration: 10, Submit: 1},
	}
	res, err := Simulate(jobs, 2, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.WaitTime(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// a waits 0, b waits 10-1=9.
	if want := 4.5; w != want {
		t.Errorf("wait time = %v, want %v", w, want)
	}

	ghost := append(jobs, Job{ID: "ghost", Nodes: 1, Duration: 1, Submit: 50})
	if _, err := res.WaitTime(ghost); err == nil {
		t.Fatal("missing placement did not error (old behavior: negative wait)")
	} else if !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error %q does not name the missing job", err)
	}

	if w, err := res.WaitTime(nil); err != nil || w != 0 {
		t.Errorf("WaitTime(nil) = %v, %v, want 0, nil", w, err)
	}
}
