#!/usr/bin/env bash
# Tier-2 gate: formatting, static analysis, and the race detector across the
# whole module. Tier-1 (go build && go test ./...) is assumed to run first;
# this script is the slower, stricter pass CI and pre-commit hooks call.
#
#   scripts/check.sh            # gofmt + vet + race tests
#   scripts/check.sh -fuzz      # also run each fuzz target (FUZZTIME, default 30s)
set -u
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    fail=1
else
    echo "ok"
fi

echo "== go vet =="
if go vet ./...; then
    echo "ok"
else
    fail=1
fi

echo "== go test -race =="
if go test -race ./...; then
    echo "ok"
else
    fail=1
fi

# The batch-executor differential wall is the correctness proof for the
# Monte Carlo fast path; run it as a named gate (race + quick) so a
# regression is attributed immediately rather than buried in the full run.
echo "== batch differential wall (race) =="
if go test -race ./internal/sim -run 'TestBatchDifferential|TestAnalytic' -count=1; then
    echo "ok"
else
    fail=1
fi

# The cluster equivalence gates are the correctness proof for wfgate: a
# 3-replica cluster must be byte-identical to a single server, a 64-way
# herd must cost exactly one evaluation, and a replica kill must reroute
# without a 5xx window. Named so a failure is attributed immediately.
echo "== cluster equivalence wall (race) =="
if go test -race ./internal/cluster -run 'TestCluster|TestGate' -count=1; then
    echo "ok"
else
    fail=1
fi

# The serve-layer bugfix regressions (If-None-Match list matching, flight
# waiter cancellation, recorder panic recycling) ride the same wall.
echo "== serve bugfix wall (race) =="
if go test -race ./internal/serve -run 'TestETagMatch|TestConditional|TestFlightWaiter|TestServeCancelled|TestInstrument|TestRecorder|TestPeerFill' -count=1; then
    echo "ok"
else
    fail=1
fi

# The streaming equivalence wall is the correctness proof for streamed
# delivery: the final streamed aggregate must be byte-identical to the
# buffered rendering (standalone and through a 1-gate/3-replica cluster),
# disconnects must cancel upstream evaluations, and the weighted-fair
# admission scheduler must shed with Retry-After rather than misreported
# timeouts. Named so a failure is attributed immediately.
echo "== streaming equivalence wall (race) =="
if go test -race ./internal/serve -run 'TestSweepStream|TestAdmission|TestQueueFullRetryAfter|TestRateShedRetryAfter|TestDeadlineNeverStartsEval' -count=1 &&
   go test -race ./internal/cluster -run 'TestClusterStream' -count=1 &&
   go test -race ./internal/study -run 'TestRunStream' -count=1 &&
   go test -race ./cmd/wfgate -run 'TestRunStreamsIncrementally' -count=1; then
    echo "ok"
else
    fail=1
fi

# The plan-cache differential wall is the correctness proof for the
# second-level evaluation cache: cached-plan and fresh-compile evaluations
# must be byte-identical (bodies and ETags) for every ensemble kind and
# /v1/model, at any worker x batch geometry, and the LRU must respect its
# capacity under random geometries. Named so a failure is attributed
# immediately.
echo "== plan cache differential wall (race) =="
if go test -race ./internal/plancache -count=1 &&
   go test -race ./internal/study -run 'TestPlanCache' -count=1 &&
   go test -race ./internal/serve -run 'TestPlanCache' -count=1; then
    echo "ok"
else
    fail=1
fi

if [ "${1:-}" = "-fuzz" ]; then
    fuzztime="${FUZZTIME:-30s}"
    echo "== fuzz ($fuzztime per target) =="
    for target in ./internal/wdl:FuzzParse ./internal/sbatch:FuzzParse \
                  ./internal/machine:FuzzParse ./internal/failure:FuzzParse \
                  ./internal/wfgen:FuzzWfgenSpec ./internal/sim:FuzzBatchPlan; do
        pkg="${target%%:*}"
        fuzz="${target##*:}"
        if ! go test "$pkg" -fuzz="$fuzz" -fuzztime="$fuzztime"; then
            fail=1
        fi
    done
fi

if [ "$fail" -ne 0 ]; then
    echo "CHECK FAILED"
    exit 1
fi
echo "CHECK PASSED"
