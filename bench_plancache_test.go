// Plan-cache benchmarks: the seed-vary workload that motivates the
// second-level cache. Every iteration POSTs a corpus sweep whose only
// varying field is the request seed — always a response-cache miss — with a
// CV==0 template, so the generated scenarios are seed-invariant below the
// response layer. With the plan cache on, evaluation reuses the cached
// scenario set; with it off, every request regenerates, rebuilds, and
// re-analyzes the corpus from scratch. The before/after pair is frozen in
// BENCH_9.json by scripts/bench.sh:
//
//	go test . -run XXX -bench 'BenchmarkServe_SweepSeedVary' -benchmem
package wroofline

import (
	"fmt"
	"testing"

	"wroofline/internal/serve"
)

// seedVarySpec mirrors loadgen's seed-vary corpus shape: CV==0, so only the
// seed varies across requests and the plan cache can serve every scenario.
const seedVarySpec = `{"kind":"corpus","machine":"perlmutter-numa","count":30,"seed":%d,` +
	`"template":{"width":5,"depth":3,"payload":"512 MB"}}`

// runSeedVary drives one fresh-seeded sweep per iteration through the
// handler. Seeds start high so the timed loop never collides with the
// priming request's response-cache entry.
func runSeedVary(b *testing.B, cfg serve.Config) {
	s := serve.New(cfg)
	h := s.Handler()
	prime(b, h, "POST", "/v1/sweep", fmt.Sprintf(seedVarySpec, 1))
	b.ReportAllocs()
	b.ResetTimer()
	w := &discardResponseWriter{h: make(map[string][]string, 8)}
	for i := 0; i < b.N; i++ {
		br := newBenchRequest("POST", "/v1/sweep", fmt.Sprintf(seedVarySpec, 1000+i))
		br.do(b, h, w)
	}
}

// BenchmarkServe_SweepSeedVaryCold measures the seed-vary workload with the
// plan cache at its default size: every request misses the response cache,
// but after the priming request all corpus scenarios are plan-cache hits.
func BenchmarkServe_SweepSeedVaryCold(b *testing.B) {
	runSeedVary(b, serve.Config{})
}

// BenchmarkServe_SweepSeedVaryNoPlanCache is the baseline: identical
// workload with the plan cache disabled, so each request pays full scenario
// generation, model build, and analysis. The Cold/NoPlanCache ratio is the
// cache's win, gated at >= 3x in scripts/bench.sh.
func BenchmarkServe_SweepSeedVaryNoPlanCache(b *testing.B) {
	runSeedVary(b, serve.Config{PlanCacheEntries: -1})
}
