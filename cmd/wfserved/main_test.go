package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, checks the
// endpoints answer, then cancels the context and requires a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "5s"}, io.Discard, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: status %d, body %s", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/model", "application/json",
		strings.NewReader(`{"case":"example"}`))
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("model: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

// syncBuffer lets the test read the daemon's JSON log while it is writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunPprofEndpoint checks -pprof exposes the profiler on its own
// listener, and that the profiler is absent from the service address.
func TestRunPprofEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logs := &syncBuffer{}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-pprof", "127.0.0.1:0", "-drain", "5s",
		}, logs, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// The pprof listener binds (and logs) before the service listener, so
	// its address is already in the log by the time ready fires.
	var pprofAddr string
	for _, line := range strings.Split(logs.String(), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Msg  string `json:"msg"`
			Addr string `json:"addr"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err == nil && rec.Msg == "pprof listening" {
			pprofAddr = rec.Addr
		}
	}
	if pprofAddr == "" {
		t.Fatalf("no 'pprof listening' log line; log:\n%s", logs.String())
	}

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof cmdline: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status %d, want 200", resp.StatusCode)
	}

	// The public address must NOT serve the profiler.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("service pprof probe: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("profiler reachable on the public service address")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

// TestRunShardsFlag boots with an explicit shard count and checks the
// effective cache geometry is logged at startup.
func TestRunShardsFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logs := &syncBuffer{}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-cache", "512", "-shards", "8", "-drain", "5s",
		}, logs, ready)
	}()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancel")
	}

	found := false
	for _, line := range strings.Split(logs.String(), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Msg     string `json:"msg"`
			Entries int    `json:"entries"`
			Shards  int    `json:"shards"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err == nil && rec.Msg == "cache geometry" {
			found = true
			if rec.Entries != 512 || rec.Shards != 8 {
				t.Errorf("geometry logged as entries=%d shards=%d, want 512/8", rec.Entries, rec.Shards)
			}
		}
	}
	if !found {
		t.Errorf("no 'cache geometry' log line; log:\n%s", logs.String())
	}
}

// TestRunPlanCacheFlag boots once with the plan cache sized by flag and once
// with it disabled, and checks /metrics reflects the difference after an
// inline-model evaluation (the only request shape that exercises the plan
// cache without a sweep).
func TestRunPlanCacheFlag(t *testing.T) {
	inline := `{"machine":"perlmutter","workflow":{"name":"w","partition":"cpu",` +
		`"tasks":[{"id":"a","nodes":1,"work":{"flops":1e12}}]}}`
	for _, tc := range []struct {
		name string
		flag string
		want bool // plan_cache_misses present in /metrics
	}{
		{"sized", "64", true},
		{"disabled", "0", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ready := make(chan string, 1)
			done := make(chan error, 1)
			go func() {
				done <- run(ctx, []string{
					"-addr", "127.0.0.1:0", "-plan-cache-entries", tc.flag, "-drain", "5s",
				}, io.Discard, ready)
			}()
			var addr string
			select {
			case addr = <-ready:
			case err := <-done:
				t.Fatalf("run exited before listening: %v", err)
			case <-time.After(10 * time.Second):
				t.Fatal("server never became ready")
			}
			resp, err := http.Post("http://"+addr+"/v1/model", "application/json",
				strings.NewReader(inline))
			if err != nil {
				t.Fatalf("model: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("model: status %d", resp.StatusCode)
			}
			resp, err = http.Get("http://" + addr + "/metrics")
			if err != nil {
				t.Fatalf("metrics: %v", err)
			}
			var snap struct {
				PlanCacheMisses uint64 `json:"plan_cache_misses"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				t.Fatalf("decode metrics: %v", err)
			}
			resp.Body.Close()
			if got := snap.PlanCacheMisses > 0; got != tc.want {
				t.Errorf("plan_cache_misses > 0 = %v, want %v", got, tc.want)
			}
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("run returned %v after cancel", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("server did not drain after cancel")
			}
		})
	}
}

// TestRunBadShards rejects shard counts that are not powers of two in
// [1, 256] before binding a listener.
func TestRunBadShards(t *testing.T) {
	for _, v := range []string{"0", "-1", "12", "257", "512"} {
		err := run(context.Background(), []string{"-shards", v}, io.Discard, nil)
		if err == nil || !strings.Contains(err.Error(), "power of two") {
			t.Errorf("-shards %s: err = %v, want power-of-two validation error", v, err)
		}
	}
}

// TestRunBadFlags rejects unknown flags without starting a listener.
func TestRunBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-bogus"}, io.Discard, nil)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunBadAddr surfaces listen errors.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, io.Discard, nil)
	if err == nil {
		t.Fatal("unusable address accepted")
	}
}

// TestParseWeights pins the -tenant-weights grammar.
func TestParseWeights(t *testing.T) {
	w, err := parseWeights("light=2,heavy=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || w["light"] != 2 || w["heavy"] != 0.5 {
		t.Fatalf("parsed %+v", w)
	}
	for _, bad := range []string{"noequals", "=2", "a=", "a=x", "a=0", "a=-1"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) accepted", bad)
		}
	}
	if w, _ := parseWeights(""); w != nil {
		t.Error("empty -tenant-weights produced a map")
	}
}

// TestRunQoSFlags boots wfserved with the admission flags set and checks
// an over-rate tenant is shed with Retry-After while others still pass.
func TestRunQoSFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-tenant-weights", "light=2",
			"-tenant-rate", "0.5", "-tenant-burst", "1", "-max-waiters", "8",
		}, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	post := func(tenant, body string) int {
		req, _ := http.NewRequest("POST", "http://"+addr+"/v1/model",
			strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
			t.Error("shed response carries no Retry-After")
		}
		return resp.StatusCode
	}
	// Distinct specs each time: cache hits bypass admission, so only cold
	// requests draw tokens.
	if got := post("a", `{"case":"example"}`); got != http.StatusOK {
		t.Fatalf("first request for tenant a: %d", got)
	}
	if got := post("a", `{"case":"lcls-cori"}`); got != http.StatusServiceUnavailable {
		t.Errorf("over-rate request for tenant a = %d, want 503", got)
	}
	if got := post("b", `{"case":"bgw-64"}`); got != http.StatusOK {
		t.Errorf("fresh tenant b = %d, want 200 (buckets are per-tenant)", got)
	}
	cancel()
	<-done
}
