package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, checks the
// endpoints answer, then cancels the context and requires a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "5s"}, io.Discard, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: status %d, body %s", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/model", "application/json",
		strings.NewReader(`{"case":"example"}`))
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("model: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

// TestRunBadFlags rejects unknown flags without starting a listener.
func TestRunBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-bogus"}, io.Discard, nil)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunBadAddr surfaces listen errors.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, io.Discard, nil)
	if err == nil {
		t.Fatal("unusable address accepted")
	}
}
