// Command wfserved runs the Workflow Roofline analysis service: model
// bounds, classification, and advice (POST /v1/model), ensemble studies in
// the wfsweep spec format (POST /v1/sweep), and paper figures as SVG
// (GET /v1/figures/{name}), plus /healthz and /metrics. Responses are
// cached by the SHA-256 of the canonicalized request and concurrent
// identical requests coalesce onto a single evaluation — see internal/serve.
//
// Usage:
//
//	wfserved                       # listen on :8080
//	wfserved -addr :9000 -workers 8
//	wfserved -cache 1024 -queue 8 -timeout 60s
//	wfserved -plan-cache-entries 1024 # second-level compiled-plan cache (0 disables)
//	wfserved -shards 64             # more cache/singleflight shards
//	wfserved -tenant-weights heavy=1,light=4 -max-waiters 32
//	wfserved -tenant-rate 50 -tenant-burst 100
//	wfserved -pprof localhost:6060 # expose net/http/pprof on a side port
//
// Evaluation slots are granted across tenants (the X-Tenant header) by
// weighted-fair queueing; -tenant-rate adds per-tenant token buckets that
// shed excess load with 503 + Retry-After. Streaming sweep delivery
// (POST /v1/sweep/stream, or Accept: application/x-ndjson on /v1/sweep)
// needs no flags.
//
// The process drains cleanly on SIGINT/SIGTERM: in-flight requests finish
// (up to -drain), new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wroofline/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "wfserved:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it serves until ctx is cancelled, then
// drains. If ready is non-nil it receives the bound address once listening
// (tests pass ":0" and read the port from here).
func run(ctx context.Context, args []string, logOut io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("wfserved", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 0, "sweep worker pool per evaluation (0 = GOMAXPROCS)")
		cache   = fs.Int("cache", 512, "result cache capacity (responses)")
		plans   = fs.Int("plan-cache-entries", 512, "second-level plan cache capacity (compiled plans, built models, corpus scenarios); 0 or negative disables")
		shards  = fs.Int("shards", 16, "cache/singleflight shard count (power of two, 1..256)")
		queue   = fs.Int("queue", 4, "max concurrent evaluations")
		waiters = fs.Int("max-waiters", 64, "per-tenant admission queue bound; arrivals beyond it are shed with 503 + Retry-After")
		weights = fs.String("tenant-weights", "", "weighted-fair tenant shares as name=weight pairs, e.g. \"heavy=1,light=4\" (unlisted tenants get 1)")
		rate    = fs.Float64("tenant-rate", 0, "per-tenant admission token rate per second; 0 disables rate shedding")
		burst   = fs.Float64("tenant-burst", 0, "per-tenant token bucket depth (default max(1, -tenant-rate))")
		timeout = fs.Duration("timeout", 30*time.Second, "per-request evaluation budget")
		drain   = fs.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")
		pprofAt = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
		peers   = fs.String("peers", "", "comma-separated base URLs of sibling replicas for peer cache-fill (cluster mode); empty disables outbound fills")
	)
	fs.SetOutput(logOut)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 || *shards > 256 || *shards&(*shards-1) != 0 {
		return fmt.Errorf("-shards must be a power of two in [1, 256], got %d", *shards)
	}

	tenantWeights, err := parseWeights(*weights)
	if err != nil {
		return err
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
				return fmt.Errorf("-peers entries must be base URLs, got %q", p)
			}
			peerList = append(peerList, p)
		}
	}

	logger := slog.New(slog.NewJSONHandler(logOut, nil))
	s := serve.New(serve.Config{
		Workers:          *workers,
		CacheEntries:     *cache,
		PlanCacheEntries: planCacheConfig(*plans),
		QueueDepth:       *queue,
		MaxWaiters:       *waiters,
		TenantWeights:    tenantWeights,
		TenantRate:       *rate,
		TenantBurst:      *burst,
		Timeout:          *timeout,
		Shards:           *shards,
		Logger:           logger,
		Peers:            peerList,
	})
	if len(peerList) > 0 {
		logger.Info("peer cache-fill enabled", "peers", peerList)
	}
	// The server may degrade the shard count for small caches (a shard must
	// own at least two entries); log the effective geometry, not the flag.
	entries, effShards := s.CacheGeometry()
	logger.Info("cache geometry", "entries", entries, "shards", effShards)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The profiler gets its own listener and mux so /debug/pprof is never
	// reachable through the public service address.
	var pprofSrv *http.Server
	if *pprofAt != "" {
		pln, err := net.Listen("tcp", *pprofAt)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "budget", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("pprof shutdown", "err", err)
		}
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("stopped")
	return nil
}

// planCacheConfig maps the -plan-cache-entries flag onto the Config field,
// where zero means "default": at the flag, 0 and negative both disable.
func planCacheConfig(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

// parseWeights parses "name=weight,name=weight" into the tenant-share map;
// an empty string means no overrides.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	weights := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights entries must be name=weight, got %q", pair)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights %q: weight must be a positive number", pair)
		}
		weights[name] = w
	}
	return weights, nil
}
