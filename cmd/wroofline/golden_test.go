package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the checked-in golden transcripts.
var update = flag.Bool("update", false, "rewrite testdata golden files")

// TestGoldenTranscripts pins the full CLI output for representative
// invocations — the Fig 1 example analysis, a measured case study with
// what-if scenarios, and an ASCII roofline — so any drift in table layout,
// number formatting, classification text, or advice wording shows up as a
// diff against the checked-in transcript. Run `go test ./cmd/wroofline
// -update` after an intentional output change and review the diff.
func TestGoldenTranscripts(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"cosmoflow", []string{"-case", "cosmoflow"}},
		{"lcls-cori-whatif", []string{"-case", "lcls-cori", "-whatif"}},
		{"bgw-64-ascii", []string{"-case", "bgw-64", "-ascii"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := capture(t, tc.args)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if out != string(want) {
				t.Errorf("%s output drifted from golden (%d bytes now, %d in golden); run with -update if intentional\ngot:\n%s",
					tc.name, len(out), len(want), out)
			}
		})
	}
}
