package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// capture runs run() with output redirected to a pipe and returns what was
// written.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	runErr := run(args, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := <-done
	return string(out), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lcls-cori", "bgw-64", "cosmoflow", "gptune-rci"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestCaseAnalysis(t *testing.T) {
	out, err := capture(t, []string{"-case", "bgw-64"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BerkeleyGW", "parallelism wall: 28", "GPU FLOPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis missing %q:\n%s", want, out)
		}
	}
}

func TestCaseWithASCIIAndSVG(t *testing.T) {
	svgPath := filepath.Join(t.TempDir(), "out.svg")
	out, err := capture(t, []string{"-case", "lcls-cori", "-ascii", "-svg", svgPath})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote "+svgPath) {
		t.Errorf("missing write confirmation:\n%s", out)
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

func TestUnknownCase(t *testing.T) {
	if _, err := capture(t, []string{"-case", "nope"}); err == nil {
		t.Error("unknown case should fail")
	}
}

func TestNoArgs(t *testing.T) {
	if _, err := capture(t, nil); err == nil {
		t.Error("missing -case/-workflow should fail")
	}
}

func TestWorkflowFromJSON(t *testing.T) {
	dir := t.TempDir()
	w := workflow.New("json-wf", machine.PartGPU)
	if err := w.AddTask(&workflow.Task{
		ID: "t", Nodes: 64,
		Work: workflow.Work{Flops: 100 * units.TFLOP, FSBytes: 1 * units.TB},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	wfPath := filepath.Join(dir, "wf.json")
	if err := os.WriteFile(wfPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, []string{"-workflow", wfPath})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "json-wf") || !strings.Contains(out, "wall: 28") {
		t.Errorf("JSON workflow analysis wrong:\n%s", out)
	}
	// With an external-bandwidth override on an external-staging workflow.
	w2 := workflow.New("staged", machine.PartCPU)
	if err := w2.AddTask(&workflow.Task{
		ID: "t", Nodes: 1, Work: workflow.Work{ExternalBytes: 1 * units.TB},
	}); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(w2)
	if err != nil {
		t.Fatal(err)
	}
	wf2 := filepath.Join(dir, "wf2.json")
	if err := os.WriteFile(wf2, data2, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, []string{"-workflow", wf2, "-external-bw", "5 GB/s"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "External") {
		t.Errorf("external ceiling missing:\n%s", out)
	}
	if _, err := capture(t, []string{"-workflow", wf2, "-external-bw", "junk"}); err == nil {
		t.Error("bad bandwidth override should fail")
	}
}

func TestLoadMachine(t *testing.T) {
	if _, err := loadMachine("perlmutter"); err != nil {
		t.Error(err)
	}
	if _, err := loadMachine("cori"); err != nil {
		t.Error(err)
	}
	if _, err := loadMachine("/nonexistent.json"); err == nil {
		t.Error("missing machine file should fail")
	}
	// Custom machine from JSON.
	dir := t.TempDir()
	data, err := json.Marshal(machine.CoriHaswell())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadMachine(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "Cori" {
		t.Errorf("loaded machine = %q", m.Name)
	}
	// Invalid JSON.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadMachine(bad); err == nil {
		t.Error("bad machine JSON should fail")
	}
}

func TestLoadWorkflowErrors(t *testing.T) {
	if _, err := loadWorkflow("/nonexistent.json"); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":""}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadWorkflow(bad); err == nil {
		t.Error("invalid workflow should fail")
	}
}

func TestWDLInput(t *testing.T) {
	src := `workflow demo on gpu
task a nodes=64 flops=100 GFLOP fs=1 TB
task b nodes=1 fs=10 GB
a -> b
`
	path := filepath.Join(t.TempDir(), "demo.wdl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, []string{"-wdl", path, "-pipeline"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "wall: 28", "pipeline analysis", "bottleneck task"} {
		if !strings.Contains(out, want) {
			t.Errorf("WDL analysis missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, []string{"-wdl", "/nonexistent.wdl"}); err == nil {
		t.Error("missing WDL file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.wdl")
	if err := os.WriteFile(bad, []byte("not a workflow"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{"-wdl", bad}); err == nil {
		t.Error("invalid WDL should fail")
	}
}

func TestWhatIfFlag(t *testing.T) {
	out, err := capture(t, []string{"-case", "lcls-cori", "-whatif"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"what-if scenarios", "base", "10x memory", "2x nodes", "2x intra-task"} {
		if !strings.Contains(out, want) {
			t.Errorf("what-if missing %q:\n%s", want, out)
		}
	}
}

func TestPipelineFlagOnCase(t *testing.T) {
	out, err := capture(t, []string{"-case", "bgw-64", "-pipeline"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipeline analysis", "sigma", "pipeline efficiency"} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline output missing %q:\n%s", want, out)
		}
	}
}

func TestSbatchInput(t *testing.T) {
	dir := t.TempDir()
	scripts := map[string]string{
		"a.sbatch": "#SBATCH --job-name=a\n#SBATCH --nodes=64\n#SBATCH --partition=gpu\n",
		"b.sbatch": "#SBATCH --job-name=b\n#SBATCH --nodes=64\n#SBATCH --partition=gpu\n#SBATCH --dependency=afterok:a\n",
	}
	for name, src := range scripts {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	trace := filepath.Join(dir, "run.iolog")
	traceSrc := "0 a read 1e12\n0 b read 1e12\n10 a dur 100\n10 b dur 100\n"
	if err := os.WriteFile(trace, []byte(traceSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, []string{"-sbatch", filepath.Join(dir, "*.sbatch"), "-iolog", trace, "-pipeline"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sbatch-workflow", "wall: 28", "pipeline analysis"} {
		if !strings.Contains(out, want) {
			t.Errorf("sbatch analysis missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, []string{"-sbatch", filepath.Join(dir, "*.nope")}); err == nil {
		t.Error("empty glob should fail")
	}
	// Structure-only scripts (no work, no trace) cannot build a model.
	if _, err := capture(t, []string{"-sbatch", filepath.Join(dir, "*.sbatch")}); err == nil {
		t.Error("sbatch without characterization should fail to build a model")
	}
	if _, err := capture(t, []string{"-sbatch", filepath.Join(dir, "*.sbatch"), "-iolog", "/nonexistent"}); err == nil {
		t.Error("missing iolog should fail")
	}
}
