// Command wroofline analyzes a workflow against the Workflow Roofline
// model: it prints the model, the bound classification, and optimization
// advice for empirical points, and can emit SVG or ASCII charts.
//
// Usage:
//
//	wroofline -case lcls-cori                 # built-in case study
//	wroofline -list                           # list built-in case studies
//	wroofline -machine perlmutter -workflow wf.json -svg out.svg
//	wroofline -case bgw-64 -ascii
//
// A JSON workflow (see internal/workflow) is analyzed with core.Build; a
// built-in case study ships the paper's exact ceilings and points.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wroofline/internal/core"
	"wroofline/internal/iolog"
	"wroofline/internal/machine"
	"wroofline/internal/pipeline"
	"wroofline/internal/plot"
	"wroofline/internal/sbatch"
	"wroofline/internal/units"
	"wroofline/internal/wdl"
	"wroofline/internal/whatif"
	"wroofline/internal/workflow"
	"wroofline/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wroofline:", err)
		os.Exit(1)
	}
}

// run is the testable entry point.
func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wroofline", flag.ContinueOnError)
	var (
		caseName     = fs.String("case", "", "built-in case study name (see -list)")
		list         = fs.Bool("list", false, "list built-in case studies")
		machineName  = fs.String("machine", "perlmutter", "machine: perlmutter, cori, or a JSON file path")
		workflowPath = fs.String("workflow", "", "workflow JSON file to analyze")
		wdlPath      = fs.String("wdl", "", "workflow description (WDL-like text) file to analyze")
		sbatchGlob   = fs.String("sbatch", "", "glob of Slurm batch scripts to assemble into a workflow")
		iologPath    = fs.String("iolog", "", "I/O trace file that characterizes the workflow's work vectors")
		externalBW   = fs.String("external-bw", "", "override external bandwidth, e.g. '5 GB/s'")
		svgPath      = fs.String("svg", "", "write the roofline chart to this SVG file")
		ascii        = fs.Bool("ascii", false, "print an ASCII roofline")
		zones        = fs.Bool("zones", true, "shade target zones when targets are set")
		showWhatIf   = fs.Bool("whatif", false, "evaluate what-if scenarios (faster resources, bigger machine)")
		showPipeline = fs.Bool("pipeline", false, "print the per-level pipeline analysis")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(out, "built-in case studies:")
		for _, n := range workloads.Names() {
			fmt.Fprintln(out, " ", n)
		}
		return nil
	}

	var (
		model  *core.Model
		points []core.Point
		mch    *machine.Machine
		wf     *workflow.Workflow
	)
	switch {
	case *caseName != "":
		cs, err := workloads.ByName(*caseName)
		if err != nil {
			return fmt.Errorf("%w (try -list)", err)
		}
		model, points, mch, wf = cs.Model, cs.Points, cs.Machine, cs.Workflow
	case *workflowPath != "" || *wdlPath != "" || *sbatchGlob != "":
		m, err := loadMachine(*machineName)
		if err != nil {
			return err
		}
		var w *workflow.Workflow
		switch {
		case *wdlPath != "":
			w, err = loadWDL(*wdlPath)
		case *sbatchGlob != "":
			w, err = loadSbatch(*sbatchGlob)
		default:
			w, err = loadWorkflow(*workflowPath)
		}
		if err != nil {
			return err
		}
		if *iologPath != "" {
			if err := applyIOLog(w, *iologPath); err != nil {
				return err
			}
		}
		opts := core.BuildOptions{}
		if *externalBW != "" {
			bw, err := units.ParseByteRate(*externalBW)
			if err != nil {
				return err
			}
			opts.ExternalBW = bw
		}
		model, err = core.Build(m, w, opts)
		if err != nil {
			return err
		}
		mch, wf = m, w
	default:
		return fmt.Errorf("need -case, -workflow, -wdl, or -sbatch (try -list)")
	}

	fmt.Fprint(out, model.Report(points))

	if *showPipeline {
		a, err := pipeline.Analyze(mch, wf, 0)
		if err != nil {
			return err
		}
		txt, err := a.Table("pipeline analysis (per DAG level)")
		if err != nil {
			return err
		}
		fmt.Fprint(out, txt)
		if eff := a.PipelineEfficiency(); eff > 0 {
			fmt.Fprintf(out, "pipeline efficiency: %.1f%% (bound %.4gs / measured %.4gs)\n",
				100*eff, a.BoundMakespan, a.MeasuredMakespan)
		}
	}

	if *showWhatIf {
		p := float64(1)
		if pt, err := wf.ParallelTasks(); err == nil {
			p = float64(pt)
		}
		var perts []whatif.Perturbation
		for _, res := range []core.Resource{core.ResCompute, core.ResMemory, core.ResExternal, core.ResFileSystem, core.ResNetwork} {
			pert := whatif.ScaleResource(res, 10)
			if _, err := pert.Apply(model); err == nil {
				perts = append(perts, pert)
			}
		}
		perts = append(perts, whatif.ScaleWall(2), whatif.IntraTask(2, 1))
		outcomes, err := whatif.Evaluate(model, p, perts)
		if err != nil {
			return err
		}
		txt, err := whatif.Table("what-if scenarios", outcomes)
		if err != nil {
			return err
		}
		fmt.Fprint(out, txt)
	}

	if *ascii {
		s, err := plot.RooflineASCII(model, points, 72, 20)
		if err != nil {
			return err
		}
		fmt.Fprint(out, s)
	}
	if *svgPath != "" {
		svg, err := plot.RooflineSVG(model, points, plot.Options{ShowZones: *zones})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *svgPath)
	}
	return nil
}

// loadMachine resolves a machine by name or JSON path.
func loadMachine(name string) (*machine.Machine, error) {
	switch strings.ToLower(name) {
	case "perlmutter", "pm":
		return machine.Perlmutter(), nil
	case "cori", "cori-hsw":
		return machine.CoriHaswell(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("machine %q is not built in and not readable: %w", name, err)
	}
	var m machine.Machine
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// applyIOLog characterizes the workflow from a trace file.
func applyIOLog(w *workflow.Workflow, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := iolog.Parse(f)
	if err != nil {
		return err
	}
	return iolog.ApplyToWorkflow(w, iolog.Aggregate(recs))
}

// loadSbatch assembles a workflow from Slurm batch scripts matching glob.
func loadSbatch(glob string) (*workflow.Workflow, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad sbatch glob %q: %w", glob, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no scripts match %q", glob)
	}
	sort.Strings(paths)
	sources := make([]string, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		sources = append(sources, string(data))
	}
	return sbatch.ParseAll("sbatch-workflow", sources)
}

// loadWDL reads a workflow description file in the wdl text format.
func loadWDL(path string) (*workflow.Workflow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return wdl.Parse(string(data))
}

// loadWorkflow reads a workflow JSON file.
func loadWorkflow(path string) (*workflow.Workflow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var w workflow.Workflow
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	return &w, nil
}
