// Command wfsim runs the discrete-event workflow simulator on a built-in
// case study and reports the makespan, throughput, per-phase time breakdown,
// and a Gantt chart.
//
// Usage:
//
//	wfsim -case lcls-cori
//	wfsim -case bgw-64 -gantt -gantt-svg bgw.svg
//	wfsim -case gptune-rci -breakdown
//	wfsim -case lcls-cori -fail-prob 0.02 -fail-restage "1 GB/s" -fail-seed 7
//	wfsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"wroofline/internal/failure"
	"wroofline/internal/gantt"
	"wroofline/internal/machine"
	"wroofline/internal/plot"
	"wroofline/internal/sim"
	"wroofline/internal/wdl"
	"wroofline/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wfsim", flag.ContinueOnError)
	var (
		caseName  = fs.String("case", "", "built-in case study name (see -list)")
		wdlPath   = fs.String("wdl", "", "simulate a workflow description file instead of a case study")
		machineNm = fs.String("machine", "perlmutter", "machine for -wdl runs: perlmutter or cori")
		list      = fs.Bool("list", false, "list built-in case studies")
		showGantt = fs.Bool("gantt", false, "print a text Gantt chart")
		ganttSVG  = fs.String("gantt-svg", "", "write the Gantt chart to this SVG file")
		showBreak = fs.Bool("breakdown", false, "print the per-phase time breakdown")
		chromeOut = fs.String("chrome-trace", "", "write spans as Chrome Trace Event JSON to this file")

		failSpec    = fs.String("fail-spec", "", "read a failure-model JSON spec from this file (see internal/failure)")
		failProb    = fs.Float64("fail-prob", 0, "per-attempt task failure probability (0 disables)")
		failMTBF    = fs.Float64("fail-mtbf", 0, "node mean time between failures in seconds (0 disables)")
		failRepair  = fs.Float64("fail-repair", 0, "node repair time in seconds (0 = default)")
		failRestage = fs.String("fail-restage", "", "re-staging rate for retried inputs, e.g. \"1 GB/s\"")
		failSeed    = fs.Uint64("fail-seed", 0, "failure-model RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "built-in case studies:")
		for _, n := range workloads.Names() {
			fmt.Fprintln(out, " ", n)
		}
		return nil
	}
	var cs *workloads.CaseStudy
	if *wdlPath != "" {
		var err error
		cs, err = caseFromWDL(*wdlPath, *machineNm)
		if err != nil {
			return err
		}
	} else {
		var err error
		cs, err = workloads.ByName(*caseName)
		if err != nil {
			return fmt.Errorf("%w (try -list)", err)
		}
	}
	fm, err := failureModel(*failSpec, *failProb, *failMTBF, *failRepair, *failRestage, *failSeed)
	if err != nil {
		return err
	}
	if fm != nil {
		cs.SimConfig.Failures = fm
	}
	res, err := cs.Simulate()
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "case: %s (%s)\n", cs.Name, cs.Figure)
	fmt.Fprintf(out, "makespan: %.2f s\n", res.Makespan)
	fmt.Fprintf(out, "throughput: %.6g tasks/s\n", res.Throughput)
	fmt.Fprintf(out, "peak nodes in use: %d\n", res.PeakNodesInUse)
	if cs.SimConfig.Failures.Enabled() {
		fmt.Fprintf(out, "retries: %d (%.2f s lost, dominant phase %s)\n",
			res.Retries, res.RetryTotalSeconds(), res.DominantRetryLabel())
		fmt.Fprintf(out, "node failures: %d\n", res.NodeFailures)
	}

	if *showBreak {
		bd := res.Breakdown()
		phases := make([]string, 0, len(bd))
		for p := range bd {
			phases = append(phases, p)
		}
		sort.Strings(phases)
		fmt.Fprintln(out, "time breakdown (summed across tasks):")
		for _, p := range phases {
			fmt.Fprintf(out, "  %-18s %10.2f s\n", p, bd[p])
		}
	}

	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			return err
		}
		if err := res.Recorder.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *chromeOut)
	}

	if *showGantt || *ganttSVG != "" {
		path, _, err := cs.Workflow.CriticalPathMeasured()
		if err != nil {
			return err
		}
		ch, err := gantt.FromRecorder(cs.Name, res.Recorder, path)
		if err != nil {
			return err
		}
		if *showGantt {
			fmt.Fprint(out, ch.Render(64))
		}
		if *ganttSVG != "" {
			svg, err := plot.GanttSVG(ch, 0, 0)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*ganttSVG, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *ganttSVG)
		}
	}
	return nil
}

// failureModel builds the failure model from -fail-spec or the inline flags
// (mixing the two is rejected so a file's parameters are never silently
// overridden). Returns nil when no failure flag was given, leaving any
// case-built-in failure model in place.
func failureModel(specPath string, prob, mtbf, repair float64, restage string, seed uint64) (*failure.Model, error) {
	inline := prob != 0 || mtbf != 0 || repair != 0 || restage != "" || seed != 0
	if specPath != "" && inline {
		return nil, fmt.Errorf("use -fail-spec or the inline -fail-* flags, not both")
	}
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		spec, err := failure.ParseSpec(data)
		if err != nil {
			return nil, err
		}
		return spec.Compile()
	}
	if !inline {
		return nil, nil
	}
	spec := &failure.Spec{
		TaskFailProb:      prob,
		NodeMTBFSeconds:   mtbf,
		NodeRepairSeconds: repair,
		RestageRate:       restage,
		Seed:              seed,
	}
	return spec.Compile()
}

// caseFromWDL wraps a workflow description into an ad-hoc case study using
// the default per-task programs derived from the characterized work.
func caseFromWDL(path, machineName string) (*workloads.CaseStudy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	w, err := wdl.Parse(string(data))
	if err != nil {
		return nil, err
	}
	var m *machine.Machine
	switch machineName {
	case "perlmutter", "pm":
		m = machine.Perlmutter()
	case "cori", "cori-hsw":
		m = machine.CoriHaswell()
	default:
		return nil, fmt.Errorf("unknown machine %q (want perlmutter or cori)", machineName)
	}
	return &workloads.CaseStudy{
		Name:      w.Name,
		Figure:    "custom",
		Machine:   m,
		Workflow:  w,
		SimConfig: sim.Config{Machine: m},
	}, nil
}
