package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wroofline/internal/workloads"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lcls-cori-bad", "bgw-1024", "gptune-spawn"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("list missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunCaseWithEverything(t *testing.T) {
	svgPath := filepath.Join(t.TempDir(), "gantt.svg")
	var sb strings.Builder
	if err := run([]string{"-case", "bgw-64", "-gantt", "-breakdown", "-gantt-svg", svgPath}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"case: BerkeleyGW/64-nodes (Fig 7a)",
		"makespan: 4184.86 s",
		"time breakdown",
		"compute",
		"epsilon",
		"sigma",
		"wrote " + svgPath,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("gantt file is not SVG")
	}
}

func TestRunAllCases(t *testing.T) {
	for _, name := range workloads.Names() {
		var sb strings.Builder
		if err := run([]string{"-case", name}, &sb); err != nil {
			t.Errorf("case %s: %v", name, err)
		}
		if !strings.Contains(sb.String(), "makespan:") {
			t.Errorf("case %s: no makespan in output", name)
		}
	}
}

func TestRunUnknownCase(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-case", "nope"}, &sb); err == nil {
		t.Error("unknown case should fail")
	}
	if err := run(nil, &sb); err == nil {
		t.Error("no case should fail")
	}
}

func TestRunWDL(t *testing.T) {
	src := `workflow custom on gpu
task a nodes=2 fs=5.6 TB
task b nodes=1 flops=38.8 TFLOP
a -> b
`
	path := filepath.Join(t.TempDir(), "c.wdl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-wdl", path, "-breakdown"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// 5.6 TB @ 5.6 TB/s + 38.8 TFLOP @ 38.8 TFLOPS = 2 s.
	if !strings.Contains(out, "makespan: 2.00 s") {
		t.Errorf("WDL sim output:\n%s", out)
	}
	if !strings.Contains(out, "case: custom (custom)") {
		t.Errorf("missing case line:\n%s", out)
	}
	if err := run([]string{"-wdl", "/nonexistent"}, &sb); err == nil {
		t.Error("missing WDL should fail")
	}
	if err := run([]string{"-wdl", path, "-machine", "frontier"}, &sb); err == nil {
		t.Error("unknown machine should fail")
	}
	// Cori machine selection works.
	src2 := "workflow c2 on haswell\ntask t nodes=1 mem=129 GB\n"
	path2 := filepath.Join(t.TempDir(), "c2.wdl")
	if err := os.WriteFile(path2, []byte(src2), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-wdl", path2, "-machine", "cori"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "makespan: 1.00 s") {
		t.Errorf("cori WDL sim:\n%s", sb.String())
	}
}

func TestChromeTraceOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	if err := run([]string{"-case", "bgw-64", "-chrome-trace", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"traceEvents"`) {
		t.Error("chrome trace missing traceEvents")
	}
	if err := run([]string{"-case", "bgw-64", "-chrome-trace", "/proc/cant/write"}, &sb); err == nil {
		t.Error("unwritable trace path should fail")
	}
}

func TestRunFailureFlags(t *testing.T) {
	var base strings.Builder
	if err := run([]string{"-case", "lcls-cori"}, &base); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(base.String(), "retries:") {
		t.Errorf("failure summary printed without failure flags:\n%s", base.String())
	}

	var sb strings.Builder
	if err := run([]string{"-case", "lcls-cori",
		"-fail-prob", "0.5", "-fail-restage", "1 GB/s", "-fail-seed", "12"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"makespan:", "retries:", "node failures:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic per seed: same flags, same transcript.
	var sb2 strings.Builder
	if err := run([]string{"-case", "lcls-cori",
		"-fail-prob", "0.5", "-fail-restage", "1 GB/s", "-fail-seed", "12"}, &sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Errorf("same seed produced different transcripts:\n%s\nvs\n%s", out, sb2.String())
	}

	// Spec-file path.
	specPath := filepath.Join(t.TempDir(), "fail.json")
	if err := os.WriteFile(specPath,
		[]byte(`{"task_fail_prob": 0.5, "seed": 12, "restage_rate": "1 GB/s"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb3 strings.Builder
	if err := run([]string{"-case", "lcls-cori", "-fail-spec", specPath}, &sb3); err != nil {
		t.Fatal(err)
	}
	if sb3.String() != out {
		t.Errorf("spec file and inline flags disagree:\n%s\nvs\n%s", out, sb3.String())
	}

	// Mixing the file with inline flags is rejected.
	var sb4 strings.Builder
	if err := run([]string{"-case", "lcls-cori", "-fail-spec", specPath, "-fail-prob", "0.1"}, &sb4); err == nil {
		t.Error("mixed -fail-spec and -fail-prob accepted")
	}
	// Invalid inline values are rejected.
	if err := run([]string{"-case", "lcls-cori", "-fail-prob", "2"}, &sb4); err == nil {
		t.Error("fail-prob of 2 accepted")
	}
}
