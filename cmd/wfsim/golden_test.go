package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update rewrites the checked-in golden transcripts.
var update = flag.Bool("update", false, "rewrite testdata golden files")

// TestGoldenTranscripts pins the simulator's full text output for
// representative case studies — makespan, throughput, Gantt chart, and
// phase breakdown — against checked-in transcripts. The simulator is
// deterministic, so any byte of drift is a real behavior change. Run
// `go test ./cmd/wfsim -update` after an intentional change and review
// the diff.
func TestGoldenTranscripts(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bgw-64-full", []string{"-case", "bgw-64", "-gantt", "-breakdown"}},
		{"lcls-cori", []string{"-case", "lcls-cori"}},
		{"gptune-rci-breakdown", []string{"-case", "gptune-rci", "-breakdown"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if out != string(want) {
				t.Errorf("%s output drifted from golden (%d bytes now, %d in golden); run with -update if intentional\ngot:\n%s",
					tc.name, len(out), len(want), out)
			}
		})
	}
}
