// Command wfload drives HTTP load against a running wfserved and reports
// achieved RPS with p50/p95/p99/max latency per endpoint. Two drivers:
// closed-loop (-workers N: each worker fires its next request when the
// previous response lands, measuring capacity at that concurrency) and
// open-loop (-rps R: requests fire on a fixed schedule regardless of
// response times, measuring latency at a target arrival rate — stalls show
// up as tail latency, not reduced load).
//
// The request blend comes from -mix: "hit-heavy" replays a small fixed
// working set (after one warm pass the server answers from cache),
// "miss-heavy" varies a spec field per request so nearly every request is a
// fresh cache key, "corpus" blends generated gen-* case models with mostly
// re-seeded corpus sweeps, "stream" requests sweeps with Accept:
// application/x-ndjson so the ttfb50 column shows time-to-first-result,
// "seed-vary" re-seeds otherwise identical studies (0% response-cache hits,
// ~100% plan-cache hits — the second-level cache's showcase), and
// "eval-heavy"/"eval-light" are the two halves of a fairness probe.
//
// Usage:
//
//	wfload -url http://localhost:8080 -mix hit-heavy -workers 8 -duration 10s
//	wfload -mix miss-heavy -rps 500 -duration 30s
//	wfload -mix stream -workers 4 -duration 10s
//	wfload -targets http://a:8080,http://b:8080,http://c:8080 -duration 10s
//	wfload -tenants heavy=eval-heavy,light=eval-light:20:4 -duration 30s
//
// With -targets, each request is consistent-hashed to the replica owning
// its content (the same rendezvous ring wfgate uses), and the report adds a
// per-target table of requests, errors, cache hits, and peer fills — the
// skew view for judging a cluster's balance and cache partitioning.
//
// With -tenants, each name=mix[:rps[:burst]] entry drives its own loop
// concurrently with its requests stamped X-Tenant: name (closed-loop
// unless rps is given), and the report adds a per-tenant table — requests,
// sheds (503s), p50/p99, and ttfb50 side by side, the view for judging
// whether weighted-fair admission protects a light tenant from a heavy
// one. -tenant stamps a single name on a whole single-loop run instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wroofline/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfload:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: parse flags, drive the load, render the
// report to out.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wfload", flag.ContinueOnError)
	var (
		url      = fs.String("url", "http://localhost:8080", "wfserved base URL (single-target mode)")
		targets  = fs.String("targets", "", "comma-separated replica base URLs: consistent-hash each request to its owner and report per-target skew (overrides -url)")
		mixName  = fs.String("mix", "hit-heavy", "request mix: hit-heavy, miss-heavy, corpus, stream, seed-vary, eval-heavy, or eval-light")
		duration = fs.Duration("duration", 10*time.Second, "how long to drive load")
		workers  = fs.Int("workers", 8, "closed-loop concurrency (open-loop: in-flight cap)")
		rps      = fs.Float64("rps", 0, "open-loop target rate; 0 selects closed-loop mode")
		burst    = fs.Int("burst", 0, "open-loop burst size: fire this many requests back to back per tick at the same average rate")
		tenant   = fs.String("tenant", "", "stamp this X-Tenant header on every request")
		tenants  = fs.String("tenants", "", "multi-tenant mode: comma-separated name=mix[:rps[:burst]] entries, each driving its own loop (overrides -mix/-rps/-tenant)")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request timeout")
		seed     = fs.Int64("seed", 1, "request-stream seed (reproducible runs)")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be positive")
	}
	if *rps < 0 {
		return fmt.Errorf("-rps must be >= 0")
	}
	mix, err := loadgen.MixByName(*mixName)
	if err != nil {
		return err
	}
	tenantList, err := parseTenants(*tenants)
	if err != nil {
		return err
	}
	var targetList []string
	if *targets != "" {
		for _, tgt := range strings.Split(*targets, ",") {
			tgt = strings.TrimSpace(tgt)
			if tgt == "" {
				continue
			}
			if !strings.HasPrefix(tgt, "http://") && !strings.HasPrefix(tgt, "https://") {
				return fmt.Errorf("-targets entries must be base URLs, got %q", tgt)
			}
			targetList = append(targetList, tgt)
		}
	}

	against := *url
	base := *url
	if len(targetList) > 0 {
		against = fmt.Sprintf("%d targets (hash-routed)", len(targetList))
		base = ""
	}
	switch {
	case len(tenantList) > 0:
		fmt.Fprintf(out, "wfload: %d tenants, %s against %s\n",
			len(tenantList), *duration, against)
	case *rps > 0:
		fmt.Fprintf(out, "wfload: open loop, %.0f RPS target, mix=%s, %s against %s\n",
			*rps, mix.Name, *duration, against)
	default:
		fmt.Fprintf(out, "wfload: closed loop, %d workers, mix=%s, %s against %s\n",
			*workers, mix.Name, *duration, against)
	}
	rep, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:  base,
		Targets:  targetList,
		Mix:      mix,
		Duration: *duration,
		Workers:  *workers,
		RPS:      *rps,
		Burst:    *burst,
		Tenant:   *tenant,
		Tenants:  tenantList,
		Timeout:  *timeout,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	rep.WriteText(out)
	return nil
}

// parseTenants parses the -tenants value: comma-separated
// name=mix[:rps[:burst]] entries, e.g. "heavy=eval-heavy,light=eval-light:20:4".
func parseTenants(s string) ([]loadgen.TenantOptions, error) {
	if s == "" {
		return nil, nil
	}
	var list []loadgen.TenantOptions
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || spec == "" {
			return nil, fmt.Errorf("-tenants entries must be name=mix[:rps[:burst]], got %q", entry)
		}
		parts := strings.Split(spec, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("-tenants %q: too many ':' fields", entry)
		}
		mix, err := loadgen.MixByName(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("-tenants %q: %w", entry, err)
		}
		to := loadgen.TenantOptions{Name: name, Mix: mix}
		if len(parts) > 1 {
			if to.RPS, err = strconv.ParseFloat(parts[1], 64); err != nil || to.RPS < 0 {
				return nil, fmt.Errorf("-tenants %q: bad rps %q", entry, parts[1])
			}
		}
		if len(parts) > 2 {
			if to.Burst, err = strconv.Atoi(parts[2]); err != nil || to.Burst < 0 {
				return nil, fmt.Errorf("-tenants %q: bad burst %q", entry, parts[2])
			}
		}
		list = append(list, to)
	}
	return list, nil
}
