package main

import (
	"context"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"wroofline/internal/serve"
)

// TestSmokeHitHeavy is the documented scenario end to end: wfload drives
// the hit-heavy mix against an in-process wfserved over real HTTP and the
// report shows non-zero RPS with percentiles.
func TestSmokeHitHeavy(t *testing.T) {
	srv := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer srv.Close()

	var sb strings.Builder
	err := run(context.Background(), []string{
		"-url", srv.URL, "-mix", "hit-heavy", "-workers", "4", "-duration", "400ms",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"closed loop", "endpoint", "p50", "p95", "p99", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The total row's RPS must be non-zero.
	m := regexp.MustCompile(`(?m)^total\s+(\d+)\s+(\d+)\s+([\d.]+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no total row in output:\n%s", out)
	}
	if reqs, _ := strconv.Atoi(m[1]); reqs == 0 {
		t.Errorf("total requests = 0:\n%s", out)
	}
	if errs, _ := strconv.Atoi(m[2]); errs != 0 {
		t.Errorf("total errors = %s:\n%s", m[2], out)
	}
	if rps, _ := strconv.ParseFloat(m[3], 64); rps <= 0 {
		t.Errorf("total rps = %s, want > 0:\n%s", m[3], out)
	}
}

// TestSmokeOpenLoopMissHeavy exercises the other driver and mix briefly.
func TestSmokeOpenLoopMissHeavy(t *testing.T) {
	srv := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer srv.Close()

	var sb strings.Builder
	err := run(context.Background(), []string{
		"-url", srv.URL, "-mix", "miss-heavy", "-rps", "100", "-duration", "300ms",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "open loop") || !strings.Contains(sb.String(), "total") {
		t.Errorf("unexpected output:\n%s", sb.String())
	}
}

// TestSmokeMultiTarget drives -targets against two in-process replicas and
// checks the per-target skew table renders with every request accounted
// for.
func TestSmokeMultiTarget(t *testing.T) {
	a := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer a.Close()
	b := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer b.Close()

	var sb strings.Builder
	err := run(context.Background(), []string{
		"-targets", a.URL + "," + b.URL, "-mix", "hit-heavy", "-workers", "4", "-duration", "400ms",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2 targets (hash-routed)", "target", "hit%", a.URL, b.URL} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFlagValidation pins the error paths without touching the network.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-mix", "bogus"},
		{"-workers", "0"},
		{"-rps", "-5"},
		{"-targets", "not-a-url"},
	} {
		var sb strings.Builder
		if err := run(context.Background(), args, &sb); err == nil {
			t.Errorf("run(%v) did not fail", args)
		}
	}
}

// TestSmokeMultiTenant drives two tenants through the CLI against a
// QoS-configured in-process server and checks the per-tenant table is
// rendered.
func TestSmokeMultiTenant(t *testing.T) {
	srv := httptest.NewServer(serve.New(serve.Config{
		TenantWeights: map[string]float64{"light": 2},
	}).Handler())
	defer srv.Close()

	var sb strings.Builder
	err := run(context.Background(), []string{
		"-url", srv.URL, "-duration", "400ms",
		"-tenants", "heavy=eval-heavy:0:0,light=hit-heavy:50",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2 tenants", "tenant", "heavy", "light", "ttfb50", "sheds"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestParseTenants pins the -tenants grammar.
func TestParseTenants(t *testing.T) {
	list, err := parseTenants("heavy=eval-heavy,light=eval-light:20:4")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "heavy" || list[1].Name != "light" {
		t.Fatalf("parsed %+v", list)
	}
	if list[0].RPS != 0 || list[0].Burst != 0 {
		t.Errorf("bare tenant gained rate/burst: %+v", list[0])
	}
	if list[1].RPS != 20 || list[1].Burst != 4 || list[1].Mix == nil {
		t.Errorf("light = %+v, want rps 20 burst 4", list[1])
	}
	for _, bad := range []string{
		"noequals", "=eval-heavy", "a=", "a=nosuchmix", "a=hit-heavy:x",
		"a=hit-heavy:5:y", "a=hit-heavy:5:2:3",
	} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("parseTenants(%q) accepted", bad)
		}
	}
	if list, _ := parseTenants(""); list != nil {
		t.Error("empty -tenants produced a tenant list")
	}
}
