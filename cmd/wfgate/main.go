// Command wfgate fronts a cluster of wfserved replicas: it consistent-
// hashes each request's content address to an owner replica (rendezvous
// hashing over the replica URLs), coalesces identical concurrent requests
// cluster-wide, health-checks the backends, and reroutes around dead ones
// fail-open — rehashing, not 502s. See internal/cluster.
//
// Usage:
//
//	wfgate -backends http://a:8080,http://b:8080,http://c:8080
//	wfgate -addr :8070 -backends ... -probe-interval 250ms
//	wfgate -pprof localhost:6061 # expose net/http/pprof on a side port
//
// The process drains cleanly on SIGINT/SIGTERM: in-flight requests finish
// (up to -drain), new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wroofline/internal/cluster"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "wfgate:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it serves until ctx is cancelled, then
// drains. If ready is non-nil it receives the bound address once listening
// (tests pass ":0" and read the port from here).
func run(ctx context.Context, args []string, logOut io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("wfgate", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8070", "listen address")
		backends  = fs.String("backends", "", "comma-separated wfserved replica base URLs (required)")
		probeIvl  = fs.Duration("probe-interval", 500*time.Millisecond, "health-probe cadence")
		failAfter = fs.Int("fail-after", 1, "consecutive probe failures before a replica leaves rotation")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-request upstream budget")
		drain     = fs.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")
		pprofAt   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061); empty disables")
	)
	fs.SetOutput(logOut)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-backends is required (comma-separated replica base URLs)")
	}

	logger := slog.New(slog.NewJSONHandler(logOut, nil))
	g, err := cluster.New(cluster.Config{
		Backends:      urls,
		ProbeInterval: *probeIvl,
		FailAfter:     *failAfter,
		Timeout:       *timeout,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	g.Start(probeCtx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The profiler gets its own listener and mux, mirroring wfserved: the
	// router proxies arbitrary paths to backends, so mounting pprof on the
	// public mux would both expose it and shadow backend routes.
	var pprofSrv *http.Server
	if *pprofAt != "" {
		pln, err := net.Listen("tcp", *pprofAt)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "backends", urls)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "budget", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("pprof shutdown", "err", err)
		}
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("stopped")
	return nil
}
