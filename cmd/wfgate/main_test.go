package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wroofline/internal/serve"
)

// TestRunServesAndDrains boots the gate on an ephemeral port in front of a
// real in-process replica, checks it proxies, then cancels the context and
// requires a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	replica := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer replica.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-backends", replica.URL, "-drain", "5s",
		}, io.Discard, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gate never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: status %d, body %s", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/model", "application/json",
		strings.NewReader(`{"case":"example"}`))
	if err != nil {
		t.Fatalf("model via gate: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	backendHdr := resp.Header.Get("X-Backend")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("model via gate: status %d", resp.StatusCode)
	}
	if backendHdr != replica.URL {
		t.Errorf("X-Backend = %q, want %q", backendHdr, replica.URL)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gate did not drain after cancel")
	}
}

// TestRunRequiresBackends rejects a missing -backends flag before binding.
func TestRunRequiresBackends(t *testing.T) {
	err := run(context.Background(), nil, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "-backends") {
		t.Errorf("err = %v, want missing -backends error", err)
	}
}

// TestRunBadBackendURL surfaces cluster config validation.
func TestRunBadBackendURL(t *testing.T) {
	err := run(context.Background(), []string{"-backends", "not-a-url"}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "base URL") {
		t.Errorf("err = %v, want base-URL validation error", err)
	}
}

// TestRunBadFlags rejects unknown flags without starting a listener.
func TestRunBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-bogus"}, io.Discard, nil)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
}
