package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wroofline/internal/serve"
)

// syncBuffer lets the test read the gate's JSON log while it is writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunServesAndDrains boots the gate on an ephemeral port in front of a
// real in-process replica, checks it proxies, then cancels the context and
// requires a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	replica := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer replica.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-backends", replica.URL, "-drain", "5s",
		}, io.Discard, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gate never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: status %d, body %s", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/model", "application/json",
		strings.NewReader(`{"case":"example"}`))
	if err != nil {
		t.Fatalf("model via gate: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	backendHdr := resp.Header.Get("X-Backend")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("model via gate: status %d", resp.StatusCode)
	}
	if backendHdr != replica.URL {
		t.Errorf("X-Backend = %q, want %q", backendHdr, replica.URL)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gate did not drain after cancel")
	}
}

// TestRunPprofEndpoint checks -pprof exposes the profiler on its own
// listener, and that the profiler is absent from the gate's public address
// (which proxies unknown paths to the backends rather than serving them).
func TestRunPprofEndpoint(t *testing.T) {
	replica := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer replica.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logs := &syncBuffer{}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-backends", replica.URL,
			"-pprof", "127.0.0.1:0", "-drain", "5s",
		}, logs, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gate never became ready")
	}

	// The pprof listener binds (and logs) before the service listener, so
	// its address is already in the log by the time ready fires.
	var pprofAddr string
	for _, line := range strings.Split(logs.String(), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Msg  string `json:"msg"`
			Addr string `json:"addr"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err == nil && rec.Msg == "pprof listening" {
			pprofAddr = rec.Addr
		}
	}
	if pprofAddr == "" {
		t.Fatalf("no 'pprof listening' log line; log:\n%s", logs.String())
	}

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof cmdline: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status %d, want 200", resp.StatusCode)
	}

	// The public address must NOT serve the profiler.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("gate pprof probe: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("profiler reachable on the public gate address")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gate did not drain after cancel")
	}
}

// TestRunRequiresBackends rejects a missing -backends flag before binding.
func TestRunRequiresBackends(t *testing.T) {
	err := run(context.Background(), nil, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "-backends") {
		t.Errorf("err = %v, want missing -backends error", err)
	}
}

// TestRunBadBackendURL surfaces cluster config validation.
func TestRunBadBackendURL(t *testing.T) {
	err := run(context.Background(), []string{"-backends", "not-a-url"}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "base URL") {
		t.Errorf("err = %v, want base-URL validation error", err)
	}
}

// TestRunBadFlags rejects unknown flags without starting a listener.
func TestRunBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-bogus"}, io.Discard, nil)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunStreamsIncrementally is the end-to-end flush proof over real TCP:
// an SSE sweep through the gate delivers its first progress frame while
// the replica is still evaluating — not as part of one buffered write at
// the end. A buffering gate would make time-to-first-event equal the total
// stream time; a flushing one makes it a small fraction.
func TestRunStreamsIncrementally(t *testing.T) {
	replica := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer replica.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-backends", replica.URL, "-drain", "5s",
		}, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gate never became ready")
	}

	// Big enough that evaluation takes a measurable while relative to the
	// first snapshot (the throttle emits ~64 snapshots across the run).
	spec := `{"kind":"montecarlo","case":"lcls-cori","trials":400000,"seed":3,"batch":256,` +
		`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`
	req, _ := http.NewRequest("POST", "http://"+addr+"/v1/sweep", strings.NewReader(spec))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", serve.ContentTypeSSE)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != serve.ContentTypeSSE {
		t.Fatalf("Content-Type = %q, want %q", got, serve.ContentTypeSSE)
	}

	// Read frame boundaries one byte at a time so arrival timing is the
	// client's, not a buffered reader's.
	var firstEvent time.Duration
	var events int
	var text strings.Builder
	buf := make([]byte, 1)
	blank := 0
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			text.WriteByte(buf[0])
			if buf[0] == '\n' {
				blank++
				if blank == 2 { // "\n\n" closes an SSE frame
					events++
					if events == 1 {
						firstEvent = time.Since(start)
					}
					blank = 0
				}
			} else {
				blank = 0
			}
		}
		if err != nil {
			break
		}
	}
	total := time.Since(start)

	if events < 2 {
		t.Fatalf("read %d SSE frames, want progress + result", events)
	}
	s := text.String()
	if !strings.Contains(s, "event: progress") {
		t.Error("no progress frame in SSE stream through the gate")
	}
	ri := strings.Index(s, "event: result")
	if ri < 0 {
		t.Fatal("no result frame in SSE stream through the gate")
	}
	if pi := strings.Index(s, "event: progress"); pi > ri {
		t.Error("progress frame arrived after the result frame")
	}
	// The incremental-delivery claim: first frame lands well before the
	// stream completes. A buffering hop collapses this to ~100%.
	if firstEvent > total/2 {
		t.Errorf("first SSE frame at %v of %v total — gate is buffering, not flushing",
			firstEvent, total)
	}
	cancel()
	<-done
}
