package main

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// runSpec executes the CLI against an inline spec and returns the rendered
// report.
func runSpec(t *testing.T, spec string, extraArgs ...string) string {
	t.Helper()
	var out bytes.Buffer
	args := append([]string{"-spec", "-"}, extraArgs...)
	if err := run(context.Background(), args, strings.NewReader(spec), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

const mcSpec = `{"kind": "montecarlo", "case": "lcls-cori", "trials": 300,
  "seed": 42, "streams": 5,
  "sampler": {"model": "twostate", "base": "1 GB/s",
              "degraded": "0.2 GB/s", "p_bad": 0.4}}`

const gridSpec = `{"kind": "grid", "case": "lcls-cori", "p": 5,
  "resources": [{"resource": "filesystem", "factors": [1, 2, 4]},
                {"resource": "memory", "factors": [1, 10]}],
  "wall_factors": [1, 2],
  "intra_task": [{"k": 1}, {"k": 2, "efficiency": 0.9}]}`

const surveySpec = `{"kind": "survey", "machine": "perlmutter",
  "partition": "cpu", "widths": [4, 8], "depths": [2, 3],
  "nodes_per_task": 2, "work": {"flops": "5 TFLOP", "fs": "100 GB"}}`

const corpusSpec = `{"kind": "corpus", "machine": "perlmutter-numa",
  "count": 100, "seed": 11,
  "template": {"width": 5, "depth": 3, "cv": 0.4, "payload": "512 MB"}}`

// TestReportByteEqualAcrossWorkerCounts is the determinism acceptance
// criterion: the full rendered report must be byte-identical at worker
// counts 1, 4, and GOMAXPROCS for every spec kind.
func TestReportByteEqualAcrossWorkerCounts(t *testing.T) {
	for _, tc := range []struct {
		name, spec string
	}{
		{"montecarlo", mcSpec},
		{"grid", gridSpec},
		{"survey", surveySpec},
		{"corpus", corpusSpec},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := runSpec(t, tc.spec, "-workers", "1")
			if base == "" {
				t.Fatal("empty report")
			}
			for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
				got := runSpec(t, tc.spec, "-workers", fmt.Sprint(workers))
				if got != base {
					t.Errorf("workers=%d: report differs from workers=1\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						workers, base, workers, got)
				}
			}
		})
	}
}

func TestMonteCarloReportShape(t *testing.T) {
	out := runSpec(t, mcSpec)
	for _, want := range []string{"Monte Carlo makespan", "lcls-cori", "300 trials", "seed 42", "p99/p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestGridReportShape(t *testing.T) {
	out := runSpec(t, gridSpec)
	for _, want := range []string{
		"What-if grid", "(24 scenarios)", "base",
		"4x filesystem", "10x memory", "2x wall", "2x intra@0.9",
		"Bound distribution across scenarios", "Binding-ceiling histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSurveyReportShape(t *testing.T) {
	out := runSpec(t, surveySpec)
	for _, want := range []string{
		"Archetype shape survey on Perlmutter/cpu",
		"bag-of-tasks", "map-reduce", "Binding-ceiling histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCorpusReportShape(t *testing.T) {
	out := runSpec(t, corpusSpec)
	for _, want := range []string{
		"Generated corpus on Perlmutter-NUMA: 100 scenarios, seed 11",
		"chain", "fanout", "diamond", "montage", "epigenomics",
		"Corpus makespan distribution", "Binding-ceiling histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatCSV(t *testing.T) {
	out := runSpec(t, gridSpec, "-format", "csv")
	if !strings.Contains(out, "scenario,bound TPS,speedup,limited by") {
		t.Errorf("csv header missing:\n%s", out)
	}
	if strings.Contains(out, "---") {
		t.Errorf("csv output contains text-table separator:\n%s", out)
	}
}

func TestFormatMarkdown(t *testing.T) {
	out := runSpec(t, gridSpec, "-format", "markdown")
	if !strings.Contains(out, "| scenario |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
}

func TestExamplesRoundTrip(t *testing.T) {
	// Every -example template must itself be a runnable spec (with the trial
	// count cut down for test speed via -workers inheriting the spec).
	for _, kind := range []string{"montecarlo", "grid", "survey", "corpus"} {
		var tmpl bytes.Buffer
		if err := run(context.Background(), []string{"-example", kind}, strings.NewReader(""), &tmpl); err != nil {
			t.Fatalf("-example %s: %v", kind, err)
		}
		spec := tmpl.String()
		if kind == "montecarlo" {
			// 10k trials is a benchmark-scale default; shrink for the test.
			spec = strings.Replace(spec, `"trials": 10000`, `"trials": 50`, 1)
		}
		if kind == "corpus" {
			// The template's 1,000 scenarios are exercised elsewhere; shrink here.
			spec = strings.Replace(spec, `"count": 1000`, `"count": 25`, 1)
		}
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-spec", "-"}, strings.NewReader(spec), &out); err != nil {
			t.Errorf("example %s spec failed to run: %v", kind, err)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	for _, tc := range []struct {
		name, spec, want string
	}{
		{"unknown kind", `{"kind": "nope"}`, "unknown spec kind"},
		{"unknown field", `{"kind": "grid", "case": "lcls-cori", "bogus": 1}`, "bogus"},
		{"unknown case", `{"kind": "grid", "case": "nope"}`, "unknown case"},
		{"missing sampler", `{"kind": "montecarlo", "case": "lcls-cori", "trials": 10}`, "sampler"},
		{"no trials", mcNoTrials, "positive trials"},
		{"bad resource", `{"kind": "grid", "case": "lcls-cori",
			"resources": [{"resource": "vibes", "factors": [2]}]}`, "unknown resource"},
		{"bad machine", `{"kind": "survey", "machine": "summit"}`, "unknown machine"},
		{"bad units", `{"kind": "survey", "work": {"flops": "5 parsecs"}}`, "work flops"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(context.Background(), []string{"-spec", "-"}, strings.NewReader(tc.spec), &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

const mcNoTrials = `{"kind": "montecarlo", "case": "lcls-cori",
  "sampler": {"model": "twostate", "base": "1 GB/s",
              "degraded": "0.2 GB/s", "p_bad": 0.4}}`

func TestMissingSpecFlag(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), nil, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "missing -spec") {
		t.Errorf("err = %v", err)
	}
}

func TestWorkersFlagOverridesSpec(t *testing.T) {
	// A spec asking for many workers still renders identically when the flag
	// forces the pool to one.
	spec := strings.Replace(gridSpec, `"p": 5`, `"p": 5, "workers": 8`, 1)
	if got, want := runSpec(t, spec, "-workers", "1"), runSpec(t, spec); got != want {
		t.Errorf("flag override changed output:\n%s\nvs\n%s", got, want)
	}
}
