// Command wfsweep runs parallel ensemble studies — Monte Carlo contention
// trials, what-if scenario grids, archetype shape surveys, failure
// ensembles, and generated-scenario corpora — over the
// sweep worker pool. A JSON spec goes in; an aligned-text, CSV, or Markdown
// report comes out. Results are bit-identical at any worker count: per-trial
// RNGs are seeded from (seed, trial index) and results aggregate in trial
// order.
//
// The spec format and runners live in internal/study, shared with the
// wfserved analysis service: a spec tested here runs unchanged against
// POST /v1/sweep.
//
// Usage:
//
//	wfsweep -spec sweep.json              # run the spec
//	wfsweep -spec - < sweep.json          # read the spec from stdin
//	wfsweep -spec sweep.json -workers 4   # override the pool size
//	wfsweep -spec sweep.json -batch 256   # trials per batch-executor call
//	wfsweep -spec sweep.json -format csv  # table (default), csv, markdown
//	wfsweep -example montecarlo           # print a template spec and exit
//
// Spec shapes (one "kind" per spec):
//
//	{"kind": "montecarlo", "case": "lcls-cori", "trials": 10000, "seed": 7,
//	 "streams": 5,
//	 "sampler": {"model": "twostate", "base": "1 GB/s",
//	             "degraded": "0.2 GB/s", "p_bad": 0.4}}
//
//	{"kind": "grid", "case": "lcls-cori", "p": 5,
//	 "resources": [{"resource": "memory", "factors": [1, 2, 10]}],
//	 "wall_factors": [1, 2], "intra_task": [{"k": 2, "efficiency": 0.9}]}
//
//	{"kind": "survey", "machine": "perlmutter", "partition": "cpu",
//	 "widths": [4, 8, 16], "depths": [2, 3], "nodes_per_task": 2,
//	 "work": {"flops": "5 TFLOP", "fs": "100 GB"}}
//
//	{"kind": "failures", "case": "lcls-cori", "trials": 200, "seed": 7,
//	 "failure": {"task_fail_prob": 0.02, "restage_rate": "1 GB/s",
//	             "retry": {"max_attempts": 5, "backoff_seconds": 1}}}
//
//	{"kind": "corpus", "machine": "perlmutter-numa", "count": 1000, "seed": 11,
//	 "families": ["chain", "montage"],
//	 "template": {"width": 8, "depth": 4, "cv": 0.4, "payload": "1 GB"}}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"wroofline/internal/study"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfsweep:", err)
		os.Exit(1)
	}
}

// run is the testable entry point.
func run(ctx context.Context, args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("wfsweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "JSON spec file ('-' reads stdin)")
	workers := fs.Int("workers", -1, "worker pool size (overrides the spec; 0 = GOMAXPROCS)")
	batch := fs.Int("batch", -1, "trials per batch-executor call (overrides the spec; 0 = auto)")
	format := fs.String("format", "table", "output format: table, csv, or markdown")
	example := fs.String("example", "", "print a template spec (montecarlo, grid, survey, failures, corpus) and exit")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example != "" {
		return printExample(out, *example)
	}
	if *specPath == "" {
		return fmt.Errorf("missing -spec (use -example montecarlo|grid|survey|failures|corpus for a template)")
	}
	var data []byte
	var err error
	if *specPath == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(*specPath)
	}
	if err != nil {
		return err
	}
	spec, err := study.ParseSpec(data)
	if err != nil {
		return err
	}
	if *workers >= 0 {
		spec.Workers = *workers
	}
	if *batch >= 0 {
		spec.Batch = *batch
	}
	tables, err := study.Run(ctx, spec)
	if err != nil {
		return err
	}
	for i, tbl := range tables {
		if i > 0 {
			fmt.Fprintln(out)
		}
		text, err := tbl.Render(*format)
		if err != nil {
			return err
		}
		fmt.Fprint(out, text)
	}
	return nil
}

// printExample writes a ready-to-edit template spec.
func printExample(out io.Writer, kind string) error {
	spec, err := study.Example(kind)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(data))
	return err
}
