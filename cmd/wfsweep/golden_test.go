package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update rewrites the checked-in golden transcripts.
var update = flag.Bool("update", false, "rewrite testdata golden files")

// TestGoldenCorpusTranscript pins the full rendered report for a small
// generated-scenario corpus so any drift in wfgen's generator, the NUMA
// machine model, the roofline bound, the simulator, or the table formatting
// shows up as a diff against the checked-in transcript. The corpus is
// deterministic per seed at any worker count, which is what makes a golden
// possible at all. Run `go test ./cmd/wfsweep -update` after an intentional
// change and review the diff.
func TestGoldenCorpusTranscript(t *testing.T) {
	cases := []struct {
		name, spec string
	}{
		{"corpus-small", `{"kind": "corpus", "machine": "perlmutter-numa",
			"count": 20, "seed": 7,
			"template": {"width": 4, "depth": 3, "cv": 0.4, "payload": "512 MB"}}`},
		{"corpus-ridgeline", `{"kind": "corpus", "machine": "ridgeline",
			"count": 10, "seed": 3, "families": ["fanout", "epigenomics"],
			"template": {"width": 6, "depth": 3, "nodes_per_task": 4,
				"net": "20 GB", "cv": 0.3, "payload": "1 GB"}}`},
		// A batched corpus with no payload or FS traffic: every scenario's
		// plan is contention-free, so the batch executor serves each through
		// the analytic fast path. The transcript must be identical to an
		// unbatched run (the batch knob never changes bytes), so this golden
		// pins the analytic makespans against the event loop's.
		{"corpus-batched-analytic", `{"kind": "corpus", "machine": "perlmutter-numa",
			"count": 12, "seed": 9, "batch": 4,
			"template": {"width": 3, "depth": 2, "cv": 0.3, "fs": "0", "payload": "0"}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(context.Background(), []string{"-spec", "-"},
				strings.NewReader(tc.spec), &out); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if out.String() != string(want) {
				t.Errorf("%s output drifted from golden (%d bytes now, %d in golden); run with -update if intentional\ngot:\n%s",
					tc.name, out.Len(), len(want), out.String())
			}
		})
	}
}
