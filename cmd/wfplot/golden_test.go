package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the checked-in golden SVGs from the current renderer.
var update = flag.Bool("update", false, "rewrite testdata golden files")

// TestGoldenSVGs pins the rendered bytes of two representative figures —
// the Fig 1 model example and the Fig 5a LCLS roofline — against checked-in
// goldens, so any drift in the plot pipeline (scales, tick placement, text
// layout, SVG structure) shows up as a byte diff rather than silently
// changing every figure. Run `go test ./cmd/wfplot -update` after an
// intentional renderer change and review the SVG diff.
func TestGoldenSVGs(t *testing.T) {
	figs, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	byFile := map[string]string{}
	for _, f := range figs {
		byFile[f.File] = f.SVG
	}
	for _, file := range []string{"example.svg", "WRF_LCLS_HSW.svg"} {
		t.Run(file, func(t *testing.T) {
			svg, ok := byFile[file]
			if !ok {
				t.Fatalf("Figures() no longer produces %s", file)
			}
			golden := filepath.Join("testdata", file+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(svg), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if svg != string(want) {
				t.Errorf("%s drifted from golden (%d bytes now, %d in golden); run with -update if intentional",
					file, len(svg), len(want))
			}
		})
	}
}
