package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFiguresCoverEveryPaperElement(t *testing.T) {
	figs, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := map[string]string{
		"example.svg":         "Fig 1",
		"WRF_Fig_2a.svg":      "Fig 2a",
		"WRF_Fig_2b.svg":      "Fig 2b",
		"WRF_Fig_2c.svg":      "Fig 2c",
		"WRF_Fig_3a.svg":      "Fig 3a",
		"WRF_Fig_3b.svg":      "Fig 3b",
		"WRF_LCLS_HSW.svg":    "Fig 5a",
		"WRF_LCLS_HSW_bd.svg": "Fig 5b",
		"WRF_LCLS_PM.svg":     "Fig 6",
		"WRF_BGW_64.svg":      "Fig 7a",
		"WRF_BGW_1024.svg":    "Fig 7b",
		"WRF_BGW_task.svg":    "Fig 7c",
		"WRF_BGW_gantt.svg":   "Fig 7d",
		"WRF_COSMO_PM.svg":    "Fig 8",
		"WRF_GPTUNE_PM.svg":   "Fig 10a",
		"WRF_GPTUNE_bd.svg":   "Fig 10b",
	}
	got := map[string]string{}
	for _, f := range figs {
		got[f.File] = f.Paper
		if !strings.HasPrefix(f.SVG, "<svg") {
			t.Errorf("%s: output does not start with <svg", f.File)
		}
		if len(f.SVG) < 500 {
			t.Errorf("%s: suspiciously small SVG (%d bytes)", f.File, len(f.SVG))
		}
	}
	for file, paper := range wantFiles {
		if got[file] != paper {
			t.Errorf("figure %s: got paper ref %q, want %q", file, got[file], paper)
		}
	}
	if len(figs) != len(wantFiles) {
		t.Errorf("figures = %d, want %d", len(figs), len(wantFiles))
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Errorf("wrote %d files, want 16", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "example.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Workflow Roofline example") {
		t.Error("example.svg missing title")
	}
}

func TestRunBadDir(t *testing.T) {
	if err := run([]string{"-out", "/proc/definitely/not/writable"}); err == nil {
		t.Error("unwritable output dir should fail")
	}
}
