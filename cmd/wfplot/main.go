// Command wfplot regenerates every figure of the paper as SVG — the native
// replacement for the artifact's plot_all_figures_wo_text.sh. Output files
// follow the artifact's naming convention:
//
//	example.svg          Fig 1    Workflow Roofline model example
//	WRF_LCLS_HSW.svg     Fig 5a   LCLS on Cori Haswell
//	WRF_LCLS_HSW_bd.svg  Fig 5b   LCLS time breakdown
//	WRF_LCLS_PM.svg      Fig 6    LCLS on Perlmutter CPU
//	WRF_BGW_64.svg       Fig 7a   BerkeleyGW, 64 nodes per task
//	WRF_BGW_1024.svg     Fig 7b   BerkeleyGW, 1024 nodes per task
//	WRF_BGW_task.svg     Fig 7c   BerkeleyGW task view
//	WRF_BGW_gantt.svg    Fig 7d   BerkeleyGW Gantt chart
//	WRF_COSMO_PM.svg     Fig 8    CosmoFlow on Perlmutter GPU
//	WRF_GPTUNE_PM.svg    Fig 10a  GPTune on Perlmutter CPU
//	WRF_GPTUNE_bd.svg    Fig 10b  GPTune time breakdown
//	WRF_Fig_2a..3b.svg   Fig 2-3  interpretation panels (zones, directions,
//	                              intra-task rescaling, node/system shading)
//
// The catalog itself lives in internal/figures, shared with the wfserved
// /v1/figures endpoint.
//
// Usage: wfplot -out figures/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wroofline/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wfplot:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wfplot", flag.ContinueOnError)
	outDir := fs.String("out", "figures", "output directory for SVG files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	figs, err := Figures()
	if err != nil {
		return err
	}
	for _, f := range figs {
		path := filepath.Join(*outDir, f.File)
		if err := os.WriteFile(path, []byte(f.SVG), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %-22s (%s)\n", path, f.Paper)
	}
	return nil
}

// Figure is one rendered paper element (alias of the shared catalog type).
type Figure = figures.Figure

// Figures renders every paper figure from the shared catalog.
func Figures() ([]Figure, error) {
	return figures.All()
}
