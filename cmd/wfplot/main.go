// Command wfplot regenerates every figure of the paper as SVG — the native
// replacement for the artifact's plot_all_figures_wo_text.sh. Output files
// follow the artifact's naming convention:
//
//	example.svg          Fig 1    Workflow Roofline model example
//	WRF_LCLS_HSW.svg     Fig 5a   LCLS on Cori Haswell
//	WRF_LCLS_HSW_bd.svg  Fig 5b   LCLS time breakdown
//	WRF_LCLS_PM.svg      Fig 6    LCLS on Perlmutter CPU
//	WRF_BGW_64.svg       Fig 7a   BerkeleyGW, 64 nodes per task
//	WRF_BGW_1024.svg     Fig 7b   BerkeleyGW, 1024 nodes per task
//	WRF_BGW_task.svg     Fig 7c   BerkeleyGW task view
//	WRF_BGW_gantt.svg    Fig 7d   BerkeleyGW Gantt chart
//	WRF_COSMO_PM.svg     Fig 8    CosmoFlow on Perlmutter GPU
//	WRF_GPTUNE_PM.svg    Fig 10a  GPTune on Perlmutter CPU
//	WRF_GPTUNE_bd.svg    Fig 10b  GPTune time breakdown
//	WRF_Fig_2a..3b.svg   Fig 2-3  interpretation panels (zones, directions,
//	                              intra-task rescaling, node/system shading)
//
// Usage: wfplot -out figures/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wroofline/internal/breakdown"
	"wroofline/internal/gantt"
	"wroofline/internal/plot"
	"wroofline/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wfplot:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wfplot", flag.ContinueOnError)
	outDir := fs.String("out", "figures", "output directory for SVG files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	figs, err := Figures()
	if err != nil {
		return err
	}
	for _, f := range figs {
		path := filepath.Join(*outDir, f.File)
		if err := os.WriteFile(path, []byte(f.SVG), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %-22s (%s)\n", path, f.Paper)
	}
	return nil
}

// Figure is one rendered paper element.
type Figure struct {
	// File is the output name, Paper the figure it reproduces.
	File, Paper string
	// SVG is the rendered document.
	SVG string
}

// Figures renders every paper figure.
func Figures() ([]Figure, error) {
	var out []Figure
	add := func(file, paper, svg string, err error) error {
		if err != nil {
			return fmt.Errorf("%s (%s): %w", file, paper, err)
		}
		out = append(out, Figure{File: file, Paper: paper, SVG: svg})
		return nil
	}

	// Fig 1: the model example.
	example, err := workloads.ExampleModel()
	if err != nil {
		return nil, err
	}
	svg, err := plot.RooflineSVG(example, nil, plot.Options{})
	if err := add("example.svg", "Fig 1", svg, err); err != nil {
		return nil, err
	}

	// Fig 2a-2c and Fig 3a-3b: the interpretation panels.
	interp, err := workloads.InterpretationFigures()
	if err != nil {
		return nil, err
	}
	for _, f := range interp {
		svg, err := plot.RooflineSVG(f.Model, f.Points, plot.Options{
			ShowZones:       f.ShowZones,
			ShadeBoundClass: f.ShadeBoundClass,
		})
		file := "WRF_" + strings.ReplaceAll(f.Name, " ", "_") + ".svg"
		if err := add(file, f.Name, svg, err); err != nil {
			return nil, err
		}
	}

	// Fig 5a + 5b: LCLS on Cori.
	lcls, err := workloads.LCLSCori()
	if err != nil {
		return nil, err
	}
	svg, err = plot.RooflineSVG(lcls.Model, lcls.Points, plot.Options{ShowZones: true})
	if err := add("WRF_LCLS_HSW.svg", "Fig 5a", svg, err); err != nil {
		return nil, err
	}
	bd := breakdown.New("LCLS time breakdown on Cori-HSW", "loading", "analysis", "merge")
	for _, build := range []func() (*workloads.CaseStudy, error){workloads.LCLSCori, workloads.LCLSCoriBadDay} {
		cs, err := build()
		if err != nil {
			return nil, err
		}
		res, err := cs.Simulate()
		if err != nil {
			return nil, err
		}
		label := "Good days"
		if cs.Name != "LCLS/Cori-HSW" {
			label = "Bad days"
		}
		if err := bd.Add(label, res.Breakdown()); err != nil {
			return nil, err
		}
	}
	svg, err = plot.BreakdownSVG(bd, 0, 0)
	if err := add("WRF_LCLS_HSW_bd.svg", "Fig 5b", svg, err); err != nil {
		return nil, err
	}

	// Fig 6: LCLS on PM-CPU.
	lclsPM, err := workloads.LCLSPerlmutter()
	if err != nil {
		return nil, err
	}
	svg, err = plot.RooflineSVG(lclsPM.Model, lclsPM.Points, plot.Options{ShowZones: true})
	if err := add("WRF_LCLS_PM.svg", "Fig 6", svg, err); err != nil {
		return nil, err
	}

	// Fig 7a/7b/7d: BGW at both scales plus the Gantt chart.
	for _, scale := range []int{64, 1024} {
		cs, err := workloads.BGW(scale)
		if err != nil {
			return nil, err
		}
		svg, err = plot.RooflineSVG(cs.Model, cs.Points, plot.Options{})
		file := fmt.Sprintf("WRF_BGW_%d.svg", scale)
		paper := map[int]string{64: "Fig 7a", 1024: "Fig 7b"}[scale]
		if err := add(file, paper, svg, err); err != nil {
			return nil, err
		}
		if scale == 64 {
			res, err := cs.Simulate()
			if err != nil {
				return nil, err
			}
			path, _, err := cs.Workflow.CriticalPathMeasured()
			if err != nil {
				return nil, err
			}
			ch, err := gantt.FromRecorder("BerkeleyGW Gantt (64 nodes)", res.Recorder, path)
			if err != nil {
				return nil, err
			}
			svg, err = plot.GanttSVG(ch, 0, 0)
			if err := add("WRF_BGW_gantt.svg", "Fig 7d", svg, err); err != nil {
				return nil, err
			}
		}
	}

	// Fig 7c: the task view.
	tv, points, err := workloads.BGWTaskView()
	if err != nil {
		return nil, err
	}
	svg, err = plot.RooflineSVG(tv, points, plot.Options{})
	if err := add("WRF_BGW_task.svg", "Fig 7c", svg, err); err != nil {
		return nil, err
	}

	// Fig 8: CosmoFlow sweep.
	cosmo, err := workloads.CosmoFlow(12)
	if err != nil {
		return nil, err
	}
	sweep, err := workloads.CosmoFlowSweep(12)
	if err != nil {
		return nil, err
	}
	svg, err = plot.RooflineSVG(cosmo.Model, sweep, plot.Options{})
	if err := add("WRF_COSMO_PM.svg", "Fig 8", svg, err); err != nil {
		return nil, err
	}

	// Fig 10a + 10b: GPTune.
	gpt, err := workloads.GPTune(workloads.GPTuneRCI)
	if err != nil {
		return nil, err
	}
	svg, err = plot.RooflineSVG(gpt.Model, gpt.Points, plot.Options{})
	if err := add("WRF_GPTUNE_PM.svg", "Fig 10a", svg, err); err != nil {
		return nil, err
	}
	gbd := breakdown.New("GPTune time breakdown",
		"python", "load data", "bash", "application", "model and search")
	for _, mode := range []workloads.GPTuneMode{workloads.GPTuneRCI, workloads.GPTuneSpawn, workloads.GPTuneProjected} {
		stack, err := workloads.GPTuneStack(mode)
		if err != nil {
			return nil, err
		}
		if err := gbd.Add(mode.String(), stack); err != nil {
			return nil, err
		}
	}
	svg, err = plot.BreakdownSVG(gbd, 0, 0)
	if err := add("WRF_GPTUNE_bd.svg", "Fig 10b", svg, err); err != nil {
		return nil, err
	}

	// The set above matches the artifact's eight roofline plots plus the
	// Gantt and breakdown panels; the Fig 9 skeletons are DOT/ASCII output
	// from the gptune example.
	return out, nil
}
