// Gate-tier benchmarks: what wfgate adds on top of a replica's cache-hit
// path. The replicas are mounted behind an in-process RoundTripper (fake
// hosts resolve straight to serve handlers, no TCP), so the measured cost
// is the gate's own work — body read, canonical keying, rendezvous
// routing, singleflight, and response copying — plus the replica hit path
// it fronts. Compare against BenchmarkServe_HitParallel for the overhead:
//
//	go test . -run XXX -bench 'Benchmark(Serve|Gate)_HitParallel' -benchmem -cpu 1,4,8
package wroofline

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"wroofline/internal/cluster"
	"wroofline/internal/serve"
)

// inprocTransport resolves fake backend hosts to in-process handlers.
type inprocTransport struct {
	handlers map[string]http.Handler
}

func (t *inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t.handlers[req.URL.Scheme+"://"+req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("no in-process handler for %s", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// newBenchGate builds a gate over n in-process replicas.
func newBenchGate(b *testing.B, n int) http.Handler {
	b.Helper()
	tr := &inprocTransport{handlers: map[string]http.Handler{}}
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d", i)
		tr.handlers[urls[i]] = serve.New(serve.Config{}).Handler()
	}
	g, err := cluster.New(cluster.Config{
		Backends: urls,
		Client:   &http.Client{Transport: tr},
	})
	if err != nil {
		b.Fatal(err)
	}
	return g.Handler()
}

// BenchmarkGate_HitParallel hammers one cached entry through a 3-replica
// gate from every proc: each request reads the body, canonicalizes to the
// routing key, rendezvous-hashes to the owner, and proxies to that
// replica's cache-hit path. The delta against BenchmarkServe_HitParallel
// is the per-request price of cluster routing.
func BenchmarkGate_HitParallel(b *testing.B) {
	h := newBenchGate(b, 3)
	const body = `{"case":"example"}`
	prime(b, h, "POST", "/v1/model", body)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &discardResponseWriter{h: make(http.Header, 8)}
		br := newBenchRequest("POST", "/v1/model", body)
		for pb.Next() {
			br.do(b, h, w)
		}
	})
}
