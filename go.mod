module wroofline

go 1.22
