// Cross-module integration tests: the full pipelines a user runs —
// JSON specs -> model -> SVG; case study -> simulation -> Gantt/breakdown ->
// SVG; live execution -> roofline point — plus end-to-end shape assertions
// that tie the paper's four stories together.
package wroofline

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"wroofline/internal/breakdown"
	"wroofline/internal/core"
	"wroofline/internal/gantt"
	"wroofline/internal/machine"
	"wroofline/internal/plot"
	"wroofline/internal/report"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
	"wroofline/internal/workloads"
)

func almostI(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

// JSON round-trip through the whole stack: machine JSON + workflow JSON ->
// Build -> Bound -> SVG.
func TestPipelineFromJSON(t *testing.T) {
	machineJSON, err := json.Marshal(machine.Perlmutter())
	if err != nil {
		t.Fatal(err)
	}
	var m machine.Machine
	if err := json.Unmarshal(machineJSON, &m); err != nil {
		t.Fatal(err)
	}

	src := workflow.New("json-wf", machine.PartGPU)
	src.Targets = workflow.Targets{MakespanSeconds: 100, ThroughputTPS: 0.1}
	for _, id := range []string{"a", "b", "c"} {
		if err := src.AddTask(&workflow.Task{
			ID: id, Nodes: 16,
			Work: workflow.Work{Flops: 100 * units.TFLOP, FSBytes: 2 * units.TB},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.AddDep("a", "c"); err != nil {
		t.Fatal(err)
	}
	wfJSON, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var w workflow.Workflow
	if err := json.Unmarshal(wfJSON, &w); err != nil {
		t.Fatal(err)
	}

	model, err := core.Build(&m, &w, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Wall != 1792/16 {
		t.Errorf("wall = %d, want 112", model.Wall)
	}
	bound, limit := model.Bound(2)
	if math.IsInf(bound, 1) || bound <= 0 {
		t.Fatalf("bound = %v", bound)
	}
	if limit.Name == "" {
		t.Error("limit ceiling unnamed")
	}
	svg, err := plot.RooflineSVG(model, nil, plot.Options{ShowZones: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "json-wf") {
		t.Error("SVG missing workflow title")
	}
}

// Simulation -> model consistency: for every case study the simulated point
// never exceeds its model bound (at matching parallelism), and the
// simulated makespan is never shorter than the bound-implied minimum.
func TestSimulationRespectsModelBound(t *testing.T) {
	all, err := workloads.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range all {
		res, err := cs.Simulate()
		if err != nil {
			t.Fatalf("%s: %v", cs.Name, err)
		}
		p, err := cs.Workflow.ParallelTasks()
		if err != nil {
			t.Fatal(err)
		}
		// CosmoFlow's model counts epochs, not instance-tasks; translate.
		achieved := res.Throughput
		if strings.HasPrefix(cs.Name, "CosmoFlow") {
			achieved = res.Throughput * workloads.CosmoEpochsPerInstance
		}
		bound, limit := cs.Model.Bound(float64(p))
		// 5% numerical slack: the LCLS dots sit marginally above their
		// per-stream ceiling because the merge task inflates the count (the
		// paper's dots overlap the ceiling the same way); allow 20% there.
		slack := 1.05
		if strings.HasPrefix(cs.Name, "LCLS") {
			slack = 1.25
		}
		if achieved > bound*slack {
			t.Errorf("%s: simulated %.5g TPS exceeds bound %.5g (%s)",
				cs.Name, achieved, bound, limit.Name)
		}
	}
}

// Simulation -> Gantt -> SVG for every case study.
func TestSimulationToGanttSVG(t *testing.T) {
	all, err := workloads.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range all {
		res, err := cs.Simulate()
		if err != nil {
			t.Fatalf("%s: %v", cs.Name, err)
		}
		path, _, err := cs.Workflow.CriticalPathMeasured()
		if err != nil {
			t.Fatal(err)
		}
		ch, err := gantt.FromRecorder(cs.Name, res.Recorder, path)
		if err != nil {
			t.Fatalf("%s: %v", cs.Name, err)
		}
		if len(ch.Bars) != cs.Workflow.TotalTasks() {
			t.Errorf("%s: gantt bars = %d, tasks = %d", cs.Name, len(ch.Bars), cs.Workflow.TotalTasks())
		}
		svg, err := plot.GanttSVG(ch, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", cs.Name, err)
		}
		if !strings.Contains(svg, "<svg") {
			t.Errorf("%s: not an SVG", cs.Name)
		}
	}
}

// The four headline stories, end to end, from freshly-built case studies.
func TestPaperHeadlines(t *testing.T) {
	// 1. LCLS is system-external bound; contention cut throughput 5x.
	lcls, err := workloads.LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	if res := lcls.Model.LimitingResource(5); res != core.ResExternal {
		t.Errorf("LCLS limiting resource = %v, want external", res)
	}
	if r := lcls.Points[0].TPS / lcls.Points[1].TPS; !almostI(r, 5, 0.05) {
		t.Errorf("LCLS good/bad = %.2f, want ~5", r)
	}

	// 2. BGW is node bound at ~42%/~30% of peak; the wall moves 28 -> 1.
	for scale, wantEff := range map[int]float64{64: 0.42, 1024: 0.273} {
		eff, err := workloads.BGWEfficiency(scale)
		if err != nil {
			t.Fatal(err)
		}
		if !almostI(eff, wantEff, 0.03) {
			t.Errorf("BGW %d-node efficiency = %.3f, want ~%.3f", scale, eff, wantEff)
		}
	}

	// 3. CosmoFlow scales linearly to the 12-instance wall under the HBM
	// ceiling.
	sweep, err := workloads.CosmoFlowSweep(12)
	if err != nil {
		t.Fatal(err)
	}
	if dev := workloads.CosmoLinearityError(sweep); dev > 0.10 {
		t.Errorf("CosmoFlow linearity deviation = %.1f%%", dev*100)
	}

	// 4. GPTune: Spawn 2.4x over RCI, 12x more projected.
	rci, err := workloads.GPTuneTotalSeconds(workloads.GPTuneRCI)
	if err != nil {
		t.Fatal(err)
	}
	spawn, err := workloads.GPTuneTotalSeconds(workloads.GPTuneSpawn)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := workloads.GPTuneTotalSeconds(workloads.GPTuneProjected)
	if err != nil {
		t.Fatal(err)
	}
	if !almostI(rci/spawn, 2.4, 0.02) || !almostI(spawn/proj, 12, 0.02) {
		t.Errorf("GPTune ratios = %.2f / %.2f, want ~2.4 / ~12", rci/spawn, spawn/proj)
	}
}

// The breakdown and report paths compose: simulate GPTune, tabulate, render
// Markdown and CSV.
func TestBreakdownToReport(t *testing.T) {
	bd := breakdown.New("GPTune", "python", "load data", "bash", "application", "model and search")
	tbl := report.NewTable("GPTune totals", "mode", "seconds")
	for _, mode := range []workloads.GPTuneMode{workloads.GPTuneRCI, workloads.GPTuneSpawn} {
		cs, err := workloads.GPTune(mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if err := bd.Add(mode.String(), res.Breakdown()); err != nil {
			t.Fatal(err)
		}
		if err := tbl.AddRowf(mode.String(), res.Makespan); err != nil {
			t.Fatal(err)
		}
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "RCI") || !strings.Contains(md, "Spawn") {
		t.Errorf("markdown missing rows:\n%s", md)
	}
	csvOut := tbl.CSV()
	if !strings.HasPrefix(csvOut, "mode,seconds") {
		t.Errorf("csv header wrong:\n%s", csvOut)
	}
	svg, err := plot.BreakdownSVG(bd, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "python") {
		t.Error("breakdown SVG missing legend")
	}
}

// Degrading a machine's external bandwidth through the public API shifts
// the ceiling and the simulated makespan coherently.
func TestContentionCoherence(t *testing.T) {
	w := workflow.New("stage", machine.PartCPU)
	if err := w.AddTask(&workflow.Task{
		ID: "t", Nodes: 1, Work: workflow.Work{ExternalBytes: 1 * units.TB},
	}); err != nil {
		t.Fatal(err)
	}
	pm := machine.Perlmutter()
	for _, bw := range []units.ByteRate{25 * units.GBPS, 5 * units.GBPS} {
		mch := pm.WithExternalBW(bw)
		model, err := core.Build(mch, w, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(w, nil, sim.Config{Machine: mch})
		if err != nil {
			t.Fatal(err)
		}
		bound, _ := model.Bound(1)
		// One task on an uncontended link runs exactly at the ceiling.
		if !almostI(res.Throughput, bound, 1e-6) {
			t.Errorf("bw %v: sim %.6g TPS vs bound %.6g", bw, res.Throughput, bound)
		}
	}
}
