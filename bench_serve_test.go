// Parallel serving benchmarks: the wfserved hot path under concurrent
// load. BenchmarkServe_HitParallel hammers a single cached /v1/model entry
// from every proc; BenchmarkServe_MixedParallel spreads a hit-heavy
// model/figure/sweep mix across many cache keys (and therefore shards).
// Run with -cpu 1,4,8 to see how throughput scales with procs:
//
//	go test . -run XXX -bench 'BenchmarkServe_(Hit|Mixed)Parallel' -benchmem -cpu 1,4,8
//
// The per-goroutine request machinery below (reusable body reader, discard
// response writer) is deliberately allocation-free so the measured ns/op
// and allocs/op belong to the serving path, not the harness.
package wroofline

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wroofline/internal/serve"
)

// discardResponseWriter is a reusable http.ResponseWriter that throws the
// body away: the e2e suite already asserts the bytes, the benchmark only
// wants the serving cost.
type discardResponseWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *discardResponseWriter) WriteHeader(code int)        { w.code = code }

// reset readies the writer for the next request without reallocating.
func (w *discardResponseWriter) reset() {
	clear(w.h)
	w.code = 0
	w.n = 0
}

// reusableBody is an io.ReadCloser over a strings.Reader that can be
// rewound between requests (io.NopCloser would allocate per iteration).
type reusableBody struct{ strings.Reader }

func (*reusableBody) Close() error { return nil }

// benchRequest is one pre-built request a benchmark goroutine replays.
type benchRequest struct {
	req  *http.Request
	body string
	rd   *reusableBody
}

// newBenchRequest builds a replayable request. For POSTs the body is
// rewound on every do; GETs carry none.
func newBenchRequest(method, path, body string) *benchRequest {
	br := &benchRequest{body: body}
	if body != "" {
		br.rd = &reusableBody{}
		br.rd.Reset(body)
		br.req = httptest.NewRequest(method, path, br.rd)
		br.req.Body = br.rd
	} else {
		br.req = httptest.NewRequest(method, path, nil)
	}
	return br
}

// do replays the request through the handler.
func (br *benchRequest) do(b *testing.B, h http.Handler, w *discardResponseWriter) {
	w.reset()
	if br.rd != nil {
		br.rd.Reset(br.body)
		br.req.ContentLength = int64(len(br.body))
	}
	h.ServeHTTP(w, br.req)
	if w.code != 0 && w.code != http.StatusOK {
		b.Fatalf("%s %s: status %d", br.req.Method, br.req.URL.Path, w.code)
	}
}

// prime evaluates a request once over real TCP-free plumbing so the cache
// holds its response before the timed loop starts.
func prime(b *testing.B, h http.Handler, method, path, body string) {
	b.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("prime %s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
	}
}

// BenchmarkServe_HitParallel is the contention probe for the serving hot
// path: every proc hammers the same cached /v1/model entry, so the only
// shared state touched per request is the cache lookup, the singleflight
// table, and the metrics. Before PR 6 those were three process-global
// mutexes; the benchmark quantifies what sharded + atomic state buys.
func BenchmarkServe_HitParallel(b *testing.B) {
	s := serve.New(serve.Config{})
	h := s.Handler()
	const body = `{"case":"example"}`
	prime(b, h, "POST", "/v1/model", body)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &discardResponseWriter{h: make(http.Header, 8)}
		br := newBenchRequest("POST", "/v1/model", body)
		for pb.Next() {
			br.do(b, h, w)
		}
	})
}

// BenchmarkServe_MixedParallel replays a hit-heavy production-shaped mix —
// eight model bodies, a figure, and a small sweep, all cached — so
// concurrent requests land on distinct cache keys (and, after sharding,
// distinct shards).
func BenchmarkServe_MixedParallel(b *testing.B) {
	s := serve.New(serve.Config{})
	h := s.Handler()
	sweepSpec := `{"kind":"montecarlo","case":"lcls-cori","trials":16,"seed":7,` +
		`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`
	type shape struct{ method, path, body string }
	var shapes []shape
	for _, c := range []string{"example", "lcls-cori", "bgw-64"} {
		shapes = append(shapes, shape{"POST", "/v1/model", fmt.Sprintf(`{"case":%q}`, c)})
	}
	for samples := 16; samples <= 128; samples *= 2 {
		shapes = append(shapes, shape{"POST", "/v1/model",
			fmt.Sprintf(`{"case":"example","curve_samples":%d}`, samples)})
	}
	shapes = append(shapes,
		shape{"GET", "/v1/figures/example.svg", ""},
		shape{"POST", "/v1/sweep", sweepSpec},
	)
	for _, sh := range shapes {
		prime(b, h, sh.method, sh.path, sh.body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var goroutineSeq uint64
	_ = goroutineSeq
	b.RunParallel(func(pb *testing.PB) {
		w := &discardResponseWriter{h: make(http.Header, 8)}
		reqs := make([]*benchRequest, len(shapes))
		for i, sh := range shapes {
			reqs[i] = newBenchRequest(sh.method, sh.path, sh.body)
		}
		i := 0
		for pb.Next() {
			br := reqs[i%len(reqs)]
			i++
			br.do(b, h, w)
		}
	})
}
