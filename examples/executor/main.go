// Executor example: the workflow execution characterization path. Runs a
// real workflow of Go functions under a parallelism wall, profiles it with
// wall-clock spans, and places the measured point on a Workflow Roofline —
// the end-to-end loop the paper's methodology describes, on live code
// instead of reported numbers.
//
// Run with: go run ./examples/executor
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"wroofline/internal/core"
	"wroofline/internal/dag"
	"wroofline/internal/exec"
	"wroofline/internal/gantt"
	"wroofline/internal/plot"
)

// analyze burns CPU for roughly d, standing in for a real analysis kernel.
func analyze(d time.Duration) exec.Fn {
	return func(ctx context.Context) error {
		deadline := time.Now().Add(d)
		x := 1.0001
		for time.Now().Before(deadline) {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			for i := 0; i < 10_000; i++ {
				x = math.Sqrt(x * 1.0001)
			}
		}
		_ = x
		return nil
	}
}

func main() {
	// An LCLS-shaped workflow: 5 parallel analyses feeding a merge.
	g := dag.New()
	fns := map[string]exec.Fn{}
	for _, id := range []string{"A", "B", "C", "D", "E"} {
		if err := g.AddEdge(id, "merge"); err != nil {
			log.Fatal(err)
		}
		fns[id] = analyze(120 * time.Millisecond)
	}
	fns["merge"] = analyze(20 * time.Millisecond)

	// Execute under a wall of 3 concurrent tasks (a small "machine").
	const wall = 3
	res, err := exec.Run(context.Background(), g, fns, exec.Options{MaxParallel: wall})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan:   %v\n", res.Makespan.Round(time.Millisecond))
	fmt.Printf("throughput: %.2f tasks/s\n\n", res.Throughput)

	// The Gantt chart of the real run.
	path, _, err := g.CriticalPath(map[string]float64{
		"A": 0.12, "B": 0.12, "C": 0.12, "D": 0.12, "E": 0.12, "merge": 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	ch, err := gantt.FromRecorder("live execution", res.Recorder, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch.Render(56))
	fmt.Println()

	// Place the measured point on a roofline: the per-task ceiling is the
	// pure kernel time (120 ms), the wall is the executor's concurrency cap.
	m := &core.Model{Title: "live workflow on this host", Wall: wall}
	m.AddCeiling(core.Ceiling{
		Name: "analysis kernel 120ms", Resource: core.ResCompute,
		Scope: core.ScopeNode, TimePerTask: 0.120,
	})
	pt, err := core.NewPoint("measured", g.Len(), wall, res.Makespan.Seconds())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Report([]core.Point{pt}))
	fmt.Println()
	ascii, err := plot.RooflineASCII(m, []core.Point{pt}, 72, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ascii)
}
