// LCLS example: the time-sensitive cross-facility workflow of Fig 4-6.
// Reproduces the Fig 5a/6 rooflines, simulates good and bad days on Cori and
// the Perlmutter what-if, and prints the Fig 5b time breakdown.
//
// Run with: go run ./examples/lcls
package main

import (
	"fmt"
	"log"

	"wroofline/internal/breakdown"
	"wroofline/internal/plot"
	"wroofline/internal/workloads"
)

func main() {
	// The Fig 4 skeleton.
	cori, err := workloads.LCLSCori()
	if err != nil {
		log.Fatal(err)
	}
	skeleton, err := cori.Workflow.Graph().ASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LCLS workflow skeleton (Fig 4):")
	fmt.Print(skeleton)
	fmt.Println()

	// Fig 5a: the roofline with the paper's reported dots.
	fmt.Print(cori.Model.Report(cori.Points))
	fmt.Println()

	// Fig 5b: simulate both days and compare.
	bd := breakdown.New("LCLS time breakdown (Fig 5b)", "loading", "analysis", "merge")
	for _, scenario := range []struct {
		label string
		build func() (*workloads.CaseStudy, error)
	}{
		{"Good days", workloads.LCLSCori},
		{"Bad days", workloads.LCLSCoriBadDay},
	} {
		cs, err := scenario.build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s simulated makespan: %7.1f s (paper reports %s)\n",
			scenario.label, res.Makespan,
			map[string]string{"Good days": "17 min", "Bad days": "85 min"}[scenario.label])
		if err := bd.Add(scenario.label, res.Breakdown()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(bd.Render(56))
	ratio, err := bd.Speedup("Bad days", "Good days")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contention factor: %.1fx (paper observes 5x)\n\n", ratio)

	// Fig 6: the Perlmutter what-if.
	pmCS, err := workloads.LCLSPerlmutter()
	if err != nil {
		log.Fatal(err)
	}
	for _, scenario := range []struct {
		label string
		build func() (*workloads.CaseStudy, error)
	}{
		{"PM-CPU ideal DTN (25 GB/s)", workloads.LCLSPerlmutter},
		{"PM-CPU 5x contention (5 GB/s)", workloads.LCLSPerlmutterContended},
	} {
		cs, err := scenario.build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		verdict := "meets"
		if res.Makespan > workloads.LCLSTarget2024Seconds {
			verdict = "misses"
		}
		fmt.Printf("%-30s makespan %6.1f s -> %s the 300 s target\n",
			scenario.label, res.Makespan, verdict)
	}
	fmt.Println()

	ascii, err := plot.RooflineASCII(pmCS.Model, nil, 72, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ascii)
}
