// Quickstart: characterize a small workflow, build its Workflow Roofline on
// Perlmutter, place a measured point, and print the analysis with an ASCII
// chart.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/plot"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

func main() {
	// 1. Pick a machine. Built-in specs carry the paper's peaks; custom
	// machines load from JSON.
	pm := machine.Perlmutter()

	// 2. Characterize the workflow: a fan-out of eight 4-node render tasks
	// feeding a 1-node composite step. Node-scoped work (flops, memory,
	// PCIe, network bytes) is per node; system-scoped work (file system,
	// external bytes) is per task.
	w := workflow.New("render-farm", machine.PartGPU)
	w.Targets = workflow.Targets{MakespanSeconds: 120, ThroughputTPS: 0.05}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("render%d", i)
		if err := w.AddTask(&workflow.Task{
			ID:    id,
			Nodes: 4,
			Work: workflow.Work{
				Flops:     40 * units.TFLOP, // per node
				PCIeBytes: 60 * units.GB,    // per node
				FSBytes:   600 * units.GB,   // per task, shared FS
			},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.AddTask(&workflow.Task{
		ID: "composite", Nodes: 1,
		Work: workflow.Work{FSBytes: 100 * units.GB},
	}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := w.AddDep(fmt.Sprintf("render%d", i), "composite"); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Build the roofline model: ceilings from machine peaks and the
	// characterized work, the parallelism wall from node counts.
	model, err := core.Build(pm, w, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Place a measured run: 9 tasks finished in 150 s with 8 running in
	// parallel.
	pt, err := core.NewPoint("measured run", w.TotalTasks(), 8, 150)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Read the analysis: bound class, target zone, and advice.
	fmt.Print(model.Report([]core.Point{pt}))

	ascii, err := plot.RooflineASCII(model, []core.Point{pt}, 72, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(ascii)
}
