// Characterize example: the full measurement-to-model loop (the paper's
// contribution C4, "workflow execution characterization methodology").
// Builds the workflow structure from sbatch scripts, characterizes the work
// from an I/O trace, calibrates the effective external bandwidth, and
// produces the roofline analysis — no hand-written numbers.
//
// Run with: go run ./examples/characterize
package main

import (
	"fmt"
	"log"
	"strings"

	"wroofline/internal/calibrate"
	"wroofline/internal/core"
	"wroofline/internal/iolog"
	"wroofline/internal/machine"
	"wroofline/internal/sbatch"
)

// Six batch scripts: five parallel analyses and a merge (the LCLS shape),
// as a workflow operator would actually submit them.
var scripts = []string{
	script("a0"), script("a1"), script("a2"), script("a3"), script("a4"),
	`#SBATCH --job-name=merge
#SBATCH --nodes=1
#SBATCH --partition=haswell
#SBATCH --dependency=afterok:a0:a1:a2:a3:a4
`,
}

func script(name string) string {
	return "#SBATCH --job-name=" + name + "\n" +
		"#SBATCH --nodes=32\n#SBATCH --ntasks=1024\n#SBATCH --partition=haswell\n"
}

// ioTrace is what a lightweight profiler (the Darshan-style path of
// Table I) would emit for one run: per-task staged bytes, FS reads, and
// durations.
const ioTrace = `
0 a0 ext_read 1e12
0 a1 ext_read 1e12
0 a2 ext_read 1e12
0 a3 ext_read 1e12
0 a4 ext_read 1e12
10 a0 read 1e12
10 a1 read 1e12
10 a2 read 1e12
10 a3 read 1e12
10 a4 read 1e12
1020 a0 dur 1018
1020 a1 dur 1022
1020 a2 dur 1019
1020 a3 dur 1025
1020 a4 dur 1021
1021 merge read 5e9
1021 merge dur 1
`

func main() {
	// 1. Structure from the batch scripts.
	w, err := sbatch.ParseAll("LCLS", scripts)
	if err != nil {
		log.Fatal(err)
	}
	p, err := w.ParallelTasks()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from sbatch: %d tasks, %d parallel, partition %q\n",
		w.TotalTasks(), p, w.Partition)

	// 2. Work vectors from the I/O trace.
	recs, err := iolog.Parse(strings.NewReader(ioTrace))
	if err != nil {
		log.Fatal(err)
	}
	profiles := iolog.Aggregate(recs)
	if err := iolog.ApplyToWorkflow(w, profiles); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from trace:  %d records across %d tasks\n", len(recs), len(profiles))

	// 3. Calibrate the effective external bandwidth from the same trace.
	obs, err := iolog.BandwidthObservations(profiles, "external")
	if err != nil {
		log.Fatal(err)
	}
	rate, err := calibrate.FitBandwidth(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated:  external path ~%.2f GB/s per stream\n\n", float64(rate)/1e9)

	// 4. Model and analysis. The characterized external path is per-stream
	// limited, so we install it as the external bandwidth for the model.
	cori := machine.CoriHaswell().WithExternalBW(rate)
	model, err := core.Build(cori, w, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// The external ceiling is per-stream on Cori: mark it node-scoped as
	// the LCLS case study does.
	for i := range model.Ceilings {
		if model.Ceilings[i].Resource == core.ResExternal {
			model.Ceilings[i].Scope = core.ScopeNode
		}
	}

	// 5. Place the measured point (makespan = slowest level-0 task plus the
	// merge) and read the verdict.
	makespan := 0.0
	for _, task := range w.Tasks() {
		if _, end, _ := taskWindow(task.MeasuredSeconds); end > makespan {
			makespan = end
		}
	}
	pt, err := core.NewPoint("traced run", w.TotalTasks(), p, makespan+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(model.Report([]core.Point{pt}))
}

// taskWindow is a tiny helper making the measured-seconds flow explicit.
func taskWindow(measured float64) (start, end float64, ok bool) {
	return 0, measured, measured > 0
}
