// CosmoFlow example: the AI throughput workflow of Fig 8. Sweeps 1..12
// concurrent 128-node training instances, shows the near-linear throughput
// scaling, and the HBM ceiling that ultimately limits it.
//
// Run with: go run ./examples/cosmoflow
package main

import (
	"fmt"
	"log"

	"wroofline/internal/plot"
	"wroofline/internal/report"
	"wroofline/internal/workloads"
)

func main() {
	cs, err := workloads.CosmoFlow(12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCIe makespan ceiling: %.2f s/epoch (paper: 0.8 s)\n", workloads.CosmoPCIeSecondsPerEpoch())
	fmt.Printf("HBM makespan ceiling:  %.2f s/epoch (paper: 4.2 s)\n", workloads.CosmoHBMSecondsPerEpoch())
	fmt.Printf("parallelism wall:      %d instances (1536 nodes / 128)\n\n", cs.Model.Wall)

	sweep, err := workloads.CosmoFlowSweep(12)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("CosmoFlow throughput sweep (Fig 8)",
		"instances", "epochs/s", "x of single instance", "% of model bound")
	for i, p := range sweep {
		bound, _ := cs.Model.Bound(p.ParallelTasks)
		if err := tbl.AddRowf(i+1, p.TPS, p.TPS/sweep[0].TPS, 100*p.TPS/bound); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(tbl.Text())
	fmt.Printf("\nworst deviation from linear scaling: %.1f%%\n",
		100*workloads.CosmoLinearityError(sweep))
	_, limit := cs.Model.Bound(12)
	fmt.Printf("binding ceiling at 12 instances: %s\n\n", limit.Name)

	ascii, err := plot.RooflineASCII(cs.Model, sweep, 72, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ascii)
}
