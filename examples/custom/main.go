// Custom example: the full toolkit on a user-defined workflow. Parses a
// workflow from the text description language, builds its roofline, runs
// the pipeline (per-level) analysis, evaluates what-if scenarios, and runs
// a Monte Carlo over external-bandwidth contention.
//
// Run with: go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"wroofline/internal/contention"
	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/pipeline"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/wdl"
	"wroofline/internal/whatif"
)

// A beamline-style pipeline: four detectors stage data in from the
// instrument, a reducer merges, an archiver writes back out.
const description = `
workflow beamline on cpu
target makespan 30m
target throughput 0.005

task det0 nodes=4 external=500 GB fs=500 GB mem=16 GB
task det1 nodes=4 external=500 GB fs=500 GB mem=16 GB
task det2 nodes=4 external=500 GB fs=500 GB mem=16 GB
task det3 nodes=4 external=500 GB fs=500 GB mem=16 GB
task reduce nodes=8 fs=2 TB flops=5 TFLOP
task archive nodes=1 fs=200 GB

det0 det1 det2 det3 -> reduce
reduce -> archive
`

func main() {
	w, err := wdl.Parse(description)
	if err != nil {
		log.Fatal(err)
	}
	pm := machine.Perlmutter()

	// Roofline model and a simulated execution.
	model, err := core.Build(pm, w, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(w, nil, sim.Config{Machine: pm})
	if err != nil {
		log.Fatal(err)
	}
	p, err := w.ParallelTasks()
	if err != nil {
		log.Fatal(err)
	}
	pt, err := core.NewPoint("simulated", w.TotalTasks(), p, res.Makespan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(model.Report([]core.Point{pt}))
	fmt.Println()

	// Per-level pipeline analysis (which stage bottlenecks?).
	analysis, err := pipeline.Analyze(pm, w, 0)
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := analysis.Table("pipeline analysis")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl)
	fmt.Printf("bottleneck level: %d\n\n", analysis.BottleneckLevel)

	// What-if: which investment actually helps?
	outcomes, err := whatif.Evaluate(model, float64(p), []whatif.Perturbation{
		whatif.ScaleResource(core.ResCompute, 10),
		whatif.ScaleResource(core.ResExternal, 2),
		whatif.ScaleWall(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	wtbl, err := whatif.Table("what-if scenarios", outcomes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(wtbl)
	factor, speedup, err := whatif.UsefulImprovement(model, float64(p), core.ResExternal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("useful external-path improvement: %.3gx (then another ceiling binds); potential speedup %.3gx\n\n",
		factor, speedup)

	// Monte Carlo over contention: how does the makespan distribute when
	// the external path degrades stochastically?
	model2 := contention.TwoState{
		Base:     pm.ExternalBW,
		Degraded: pm.ExternalBW / 5,
		PBad:     0.3,
	}
	dist, err := contention.MonteCarlo(100, 2024, model2, func(rate units.ByteRate) (float64, error) {
		day, err := sim.Run(w, nil, sim.Config{Machine: pm, ExternalBW: rate})
		if err != nil {
			return 0, err
		}
		return day.Makespan, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	p50, err := dist.Percentile(50)
	if err != nil {
		log.Fatal(err)
	}
	p99, err := dist.Percentile(99)
	if err != nil {
		log.Fatal(err)
	}
	tail, err := dist.TailRatio()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contention Monte Carlo over %d days: median %.0fs, p99 %.0fs, tail ratio %.2fx\n",
		dist.N(), p50, p99, tail)
	deadline := w.Targets.MakespanSeconds
	missed := 0
	for pct := 1.0; pct <= 100; pct++ {
		v, err := dist.Percentile(pct)
		if err != nil {
			log.Fatal(err)
		}
		if v > deadline {
			missed++
		}
	}
	fmt.Printf("approximately %d%% of days miss the %.0fs deadline\n", missed, deadline)
}
