// GPTune example: the control-flow-bound autotuner of Fig 9-10. Shows the
// two control flows (RCI vs Spawn), simulates both, regenerates the Fig 10b
// breakdown, and prints the 2.4x / 12x headroom chain.
//
// Run with: go run ./examples/gptune
package main

import (
	"fmt"
	"log"

	"wroofline/internal/breakdown"
	"wroofline/internal/dag"
	"wroofline/internal/plot"
	"wroofline/internal/workloads"
)

func main() {
	// Fig 9: the two control-flow skeletons, sketched as DAGs.
	rciFlow, err := dag.Chain("load metadata", "python proposes", "srun app", "store")
	if err != nil {
		log.Fatal(err)
	}
	spawnFlow, err := dag.Chain("metadata in memory", "spawn app", "store")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RCI control flow per iteration (Fig 9a):")
	rciASCII, err := rciFlow.ASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rciASCII)
	fmt.Println("Spawn control flow per iteration (Fig 9b):")
	spawnASCII, err := spawnFlow.ASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spawnASCII)
	fmt.Println()

	// Fig 10b: breakdown from the published stacks plus simulated totals.
	bd := breakdown.New("GPTune time breakdown (Fig 10b)",
		"python", "load data", "bash", "application", "model and search")
	for _, mode := range []workloads.GPTuneMode{workloads.GPTuneRCI, workloads.GPTuneSpawn, workloads.GPTuneProjected} {
		stack, err := workloads.GPTuneStack(mode)
		if err != nil {
			log.Fatal(err)
		}
		if err := bd.Add(mode.String(), stack); err != nil {
			log.Fatal(err)
		}
		if mode == workloads.GPTuneProjected {
			continue // the projection is analytical, not simulated
		}
		cs, err := workloads.GPTune(mode)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		total, err := workloads.GPTuneTotalSeconds(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s simulated %6.1f s (paper reports %.0f s)\n", mode, res.Makespan, total)
	}
	fmt.Println()
	fmt.Print(bd.Render(56))

	s1, err := bd.Speedup("RCI", "Spawn")
	if err != nil {
		log.Fatal(err)
	}
	s2, err := bd.Speedup("Spawn", "Projected")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Spawn over RCI: %.1fx (paper: 2.4x); projected over Spawn: %.1fx (paper: 12x)\n\n", s1, s2)

	// Fig 10a: the roofline with the three dots.
	cs, err := workloads.GPTune(workloads.GPTuneRCI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cs.Model.Report(cs.Points))
	fmt.Println()
	ascii, err := plot.RooflineASCII(cs.Model, cs.Points, 72, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ascii)
}
