// BerkeleyGW example: the traditional HPC workflow of Fig 7. Shows the
// urgency-vs-throughput tradeoff between 64 and 1024 nodes per task, the
// per-task view, and the Gantt chart whose critical path is scale-invariant.
//
// Run with: go run ./examples/bgw
package main

import (
	"fmt"
	"log"

	"wroofline/internal/gantt"
	"wroofline/internal/plot"
	"wroofline/internal/report"
	"wroofline/internal/workloads"
)

func main() {
	// Fig 7a/7b: the workflow roofline at both scales.
	tbl := report.NewTable("BerkeleyGW at two scales (Fig 7a/7b)",
		"nodes/task", "wall", "ceiling (s)", "measured (s)", "% of node peak")
	for _, scale := range []int{64, 1024} {
		cs, err := workloads.BGW(scale)
		if err != nil {
			log.Fatal(err)
		}
		eff, err := workloads.BGWEfficiency(scale)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		if err := tbl.AddRowf(scale, cs.Model.Wall,
			workloads.BGWNodeCeilingSeconds(scale), res.Makespan, 100*eff); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(tbl.Text())
	fmt.Println()

	// The Section IV-C2 interpretation.
	cs64, err := workloads.BGW(64)
	if err != nil {
		log.Fatal(err)
	}
	cs1024, err := workloads.BGW(1024)
	if err != nil {
		log.Fatal(err)
	}
	at64, _ := cs64.Model.BoundAtWall()
	at1024, _ := cs1024.Model.BoundAtWall()
	fmt.Printf("urgent single result:  1024 nodes, %.0f s\n", workloads.BGWMeasured1024)
	fmt.Printf("batch throughput:      64-node instances allow %.4g tasks/s at the wall (vs %.4g at 1024)\n\n",
		at64, at1024)

	// Fig 7c: the task view — Sigma is the lowest dot at both scales.
	tv, points, err := workloads.BGWTaskView()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tv.Report(points))
	fmt.Println()

	// Fig 7d: the Gantt chart from a simulated run.
	for _, scale := range []int{64, 1024} {
		cs, err := workloads.BGW(scale)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		path, _, err := cs.Workflow.CriticalPathMeasured()
		if err != nil {
			log.Fatal(err)
		}
		ch, err := gantt.FromRecorder(fmt.Sprintf("BGW Gantt, %d nodes (Fig 7d)", scale), res.Recorder, path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(ch.Render(56))
		fmt.Println()
	}

	ascii, err := plot.RooflineASCII(cs64.Model, cs64.Points, 72, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ascii)
}
