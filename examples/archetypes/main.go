// Archetypes example: survey the NERSC-style workflow shapes with the
// model and the simulator. For each archetype (bag-of-tasks, pipeline,
// fork-join, map-reduce, scatter-gather) with identical per-task work, it
// reports the structural width, the model bound at that width, the
// simulated throughput, and the binding resource — showing how pure
// structure moves a workflow around the roofline.
//
// Run with: go run ./examples/archetypes
package main

import (
	"fmt"
	"log"

	"wroofline/internal/archetype"
	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/report"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

func main() {
	pm := machine.Perlmutter()
	params := archetype.Params{
		Partition:    machine.PartGPU,
		Width:        8,
		Depth:        3,
		NodesPerTask: 64,
		Work: workflow.Work{
			Flops:   388 * units.TFLOP, // 10 s per task at the node peak
			FSBytes: 1 * units.TB,      // 0.18 s through the shared FS
		},
	}

	tbl := report.NewTable("archetype survey (identical per-task work)",
		"shape", "tasks", "width", "CP len", "bound TPS @ width", "sim TPS", "sim makespan (s)", "limited by")
	for _, shape := range archetype.Catalog() {
		p := params
		p.Name = shape.Name
		w, err := shape.Generate(p)
		if err != nil {
			log.Fatal(err)
		}
		model, err := core.Build(pm, w, core.BuildOptions{})
		if err != nil {
			log.Fatal(err)
		}
		width, err := w.ParallelTasks()
		if err != nil {
			log.Fatal(err)
		}
		cpl, err := w.Graph().CriticalPathLength()
		if err != nil {
			log.Fatal(err)
		}
		bound, limit := model.Bound(float64(width))
		res, err := sim.Run(w, nil, sim.Config{Machine: pm})
		if err != nil {
			log.Fatal(err)
		}
		if err := tbl.AddRowf(shape.Name, w.TotalTasks(), width, cpl,
			bound, res.Throughput, res.Makespan, limit.Resource.String()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(tbl.Text())
	fmt.Println("\nreading: width drives the attainable bound; depth (critical path)")
	fmt.Println("drives the makespan; the same per-task work lands in different")
	fmt.Println("regimes purely through workflow structure.")
}
